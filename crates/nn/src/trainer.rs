use std::path::PathBuf;

use maleva_linalg::{stats, Matrix};
use maleva_obs::trace::{self, Span};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{TrainCheckpoint, CHECKPOINT_VERSION};
use crate::optim::{Adam, OptimizerState, Sgd};
use crate::{init, loss, Gradients, Network, NnError};

/// Process-wide training counters in the shared `maleva-obs` registry.
fn train_counters() -> &'static (
    std::sync::Arc<maleva_obs::Counter>,
    std::sync::Arc<maleva_obs::Counter>,
) {
    static COUNTERS: std::sync::OnceLock<(
        std::sync::Arc<maleva_obs::Counter>,
        std::sync::Arc<maleva_obs::Counter>,
    )> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = maleva_obs::metrics::global();
        (
            registry.counter("train_epochs_total", "Training epochs completed."),
            registry.counter("train_batches_total", "Minibatch updates applied."),
        )
    })
}

/// What the trainer does when an epoch numerically diverges (non-finite
/// loss, gradient or weight — see [`NnError::NumericDivergence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergencePolicy {
    /// Fail the run with the divergence error (the default).
    Abort,
    /// Restore the network to the end of the last good epoch and return
    /// the report so far. Diverging before any epoch completes is still
    /// an error.
    Rollback,
    /// Restore the last good epoch, halve the learning rate, and retry
    /// the epoch — up to 8 halvings, after which the error surfaces.
    HalveLrRetry,
}

/// Retry bound for [`DivergencePolicy::HalveLrRetry`]: 8 halvings cut
/// the learning rate by 256×; a run still diverging there is beyond
/// rescue by step size.
const MAX_LR_HALVINGS: usize = 8;

/// Which optimizer the trainer instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adam with the configured learning rate (the paper's choice).
    Adam,
    /// SGD with the configured learning rate and this momentum.
    Sgd {
        /// Momentum coefficient in `[0, 1)`.
        momentum: f64,
    },
}

/// Training hyperparameters.
///
/// Defaults mirror the paper's substitute-model recipe where practical:
/// Adam, learning rate 0.001, batch size 256 (Section III-B; the paper's
/// 1000 epochs are impractical on a laptop reproduction — configure
/// `epochs` per experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    epochs: usize,
    batch_size: usize,
    learning_rate: f64,
    temperature: f64,
    optimizer: OptimizerKind,
    weight_decay: f64,
    seed: u64,
    early_stop_patience: Option<usize>,
    grad_clip: Option<f64>,
    on_divergence: DivergencePolicy,
    checkpoint_dir: Option<String>,
    checkpoint_every: usize,
    resume: bool,
}

impl TrainConfig {
    /// Creates the default configuration (Adam, lr 0.001, batch 256,
    /// 10 epochs, T = 1, no weight decay, seed 0, abort on divergence,
    /// no gradient clipping, no checkpointing).
    pub fn new() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 256,
            learning_rate: 0.001,
            temperature: 1.0,
            optimizer: OptimizerKind::Adam,
            weight_decay: 0.0,
            seed: 0,
            early_stop_patience: None,
            grad_clip: None,
            on_divergence: DivergencePolicy::Abort,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
        }
    }

    /// Sets the number of passes over the training data.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the minibatch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the optimizer learning rate.
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the softmax temperature used in the training loss. Defensive
    /// distillation trains teacher and student at T ≫ 1 (the paper uses
    /// T = 50).
    pub fn temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// Selects the optimizer.
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.optimizer = kind;
        self
    }

    /// Sets L2 weight decay.
    pub fn weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the RNG seed governing shuffling and dropout.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables early stopping: training ends once the validation loss has
    /// not improved by at least `1e-4` for `patience` consecutive epochs.
    /// Requires a validation set to be passed to
    /// [`Trainer::fit_labeled`]; without one the setting is ignored.
    pub fn early_stop_patience(mut self, patience: usize) -> Self {
        self.early_stop_patience = Some(patience);
        self
    }

    /// Enables global gradient clipping: whenever the L2 norm of the
    /// full gradient (all layers, weights and biases together) exceeds
    /// `max_norm`, the gradient is rescaled to that norm. A standard
    /// guard against exploding gradients.
    pub fn grad_clip(mut self, max_norm: f64) -> Self {
        self.grad_clip = Some(max_norm);
        self
    }

    /// Selects what happens when training numerically diverges. The
    /// default is [`DivergencePolicy::Abort`].
    pub fn on_divergence(mut self, policy: DivergencePolicy) -> Self {
        self.on_divergence = policy;
        self
    }

    /// Enables checkpointing into `dir`: a [`TrainCheckpoint`] is
    /// written there after every K-th completed epoch (see
    /// [`TrainConfig::checkpoint_every`]). Combine with
    /// [`TrainConfig::resume`] to continue an interrupted run.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into().to_string_lossy().into_owned());
        self
    }

    /// Sets the checkpoint cadence: write every `k` completed epochs
    /// (default 1). Ignored without [`TrainConfig::checkpoint_dir`].
    pub fn checkpoint_every(mut self, k: usize) -> Self {
        self.checkpoint_every = k;
        self
    }

    /// When a checkpoint exists in the checkpoint directory, resume from
    /// it instead of starting over. A resumed run is bit-identical to an
    /// uninterrupted one. Without an existing checkpoint, training
    /// starts fresh.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The configured temperature.
    pub fn temperature_value(&self) -> f64 {
        self.temperature
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.epochs == 0 {
            return Err(NnError::InvalidConfig {
                detail: "epochs must be positive".to_string(),
            });
        }
        if self.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                detail: "batch size must be positive".to_string(),
            });
        }
        if self.learning_rate <= 0.0 {
            return Err(NnError::InvalidConfig {
                detail: format!("learning rate must be positive, got {}", self.learning_rate),
            });
        }
        if self.temperature <= 0.0 {
            return Err(NnError::InvalidConfig {
                detail: format!("temperature must be positive, got {}", self.temperature),
            });
        }
        if let OptimizerKind::Sgd { momentum } = self.optimizer {
            if !(0.0..1.0).contains(&momentum) {
                return Err(NnError::InvalidConfig {
                    detail: format!("momentum must be in [0, 1), got {momentum}"),
                });
            }
        }
        if let Some(c) = self.grad_clip {
            if !(c > 0.0 && c.is_finite()) {
                return Err(NnError::InvalidConfig {
                    detail: format!("gradient clip norm must be positive and finite, got {c}"),
                });
            }
        }
        if self.checkpoint_every == 0 {
            return Err(NnError::InvalidConfig {
                detail: "checkpoint cadence must be positive".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Labels for one training run: hard class indices or soft probability
/// rows (the distillation student trains on the teacher's soft labels).
#[derive(Debug, Clone, Copy)]
pub enum LabelSource<'a> {
    /// One class index per sample.
    Hard(&'a [usize]),
    /// One probability row per sample (`n x num_classes`).
    Soft(&'a Matrix),
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Training accuracy over the epoch (argmax vs hard labels;
    /// `None` when training on soft labels).
    pub train_accuracy: Option<f64>,
    /// Validation loss, if a validation set was supplied.
    pub val_loss: Option<f64>,
    /// Validation accuracy, if a validation set was supplied.
    pub val_accuracy: Option<f64>,
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Statistics for each epoch in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// The final epoch's training loss.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map(|e| e.train_loss).unwrap_or(f64::NAN)
    }

    /// The final epoch's training accuracy, if tracked.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.train_accuracy)
    }
}

/// Seeded minibatch trainer for [`Network`].
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains on hard labels. Convenience for
    /// [`Trainer::fit_labeled`] with [`LabelSource::Hard`].
    ///
    /// # Errors
    ///
    /// See [`Trainer::fit_labeled`].
    pub fn fit(
        &self,
        net: &mut Network,
        x: &Matrix,
        labels: &[usize],
    ) -> Result<TrainReport, NnError> {
        self.fit_labeled(net, x, LabelSource::Hard(labels), None)
    }

    /// Trains on soft labels (distillation).
    ///
    /// # Errors
    ///
    /// See [`Trainer::fit_labeled`].
    pub fn fit_soft(
        &self,
        net: &mut Network,
        x: &Matrix,
        soft: &Matrix,
    ) -> Result<TrainReport, NnError> {
        self.fit_labeled(net, x, LabelSource::Soft(soft), None)
    }

    /// Trains with full control: hard or soft labels, plus an optional
    /// hard-labelled validation set evaluated after every epoch.
    ///
    /// # Errors
    ///
    /// * [`NnError::InvalidConfig`] for degenerate hyperparameters.
    /// * [`NnError::LabelMismatch`] if labels do not match the batch.
    /// * [`NnError::InputShape`] if the feature width is wrong.
    pub fn fit_labeled(
        &self,
        net: &mut Network,
        x: &Matrix,
        labels: LabelSource<'_>,
        validation: Option<(&Matrix, &[usize])>,
    ) -> Result<TrainReport, NnError> {
        self.config.validate()?;
        let n = x.rows();
        if n == 0 {
            return Err(NnError::LabelMismatch {
                detail: "empty training set".to_string(),
            });
        }
        match labels {
            LabelSource::Hard(l) => {
                if l.len() != n {
                    return Err(NnError::LabelMismatch {
                        detail: format!("{} labels for {} samples", l.len(), n),
                    });
                }
                if let Some(&bad) = l.iter().find(|&&c| c >= net.num_classes()) {
                    return Err(NnError::LabelMismatch {
                        detail: format!(
                            "label {bad} out of range for {} classes",
                            net.num_classes()
                        ),
                    });
                }
            }
            LabelSource::Soft(s) => {
                if s.shape() != (n, net.num_classes()) {
                    return Err(NnError::LabelMismatch {
                        detail: format!(
                            "soft labels are {:?}, expected ({n}, {})",
                            s.shape(),
                            net.num_classes()
                        ),
                    });
                }
            }
        }

        let mut rng = init::rng(self.config.seed);
        let mut opt = match self.config.optimizer {
            OptimizerKind::Adam => OptimizerState::Adam(
                Adam::new(self.config.learning_rate).with_weight_decay(self.config.weight_decay),
            ),
            OptimizerKind::Sgd { momentum } => OptimizerState::Sgd(
                Sgd::new(self.config.learning_rate)
                    .with_momentum(momentum)
                    .with_weight_decay(self.config.weight_decay),
            ),
        };

        let mut indices: Vec<usize> = (0..n).collect();
        let mut report = TrainReport { epochs: Vec::new() };
        let mut best_val_loss = f64::INFINITY;
        let mut epochs_since_best = 0usize;
        let mut lr_halvings = 0usize;
        let mut epoch = 0usize;

        let checkpoint_dir = self.config.checkpoint_dir.as_ref().map(PathBuf::from);
        if self.config.resume {
            if let Some(dir) = &checkpoint_dir {
                if let Some(cp) = TrainCheckpoint::load(dir)? {
                    if cp.indices.len() != n {
                        return Err(NnError::Checkpoint {
                            detail: format!(
                                "checkpoint was taken on {} samples but the training set has {n}",
                                cp.indices.len()
                            ),
                        });
                    }
                    *net = cp.network;
                    opt = cp.optimizer;
                    rng = cp.rng;
                    indices = cp.indices;
                    report = cp.report;
                    best_val_loss = cp.best_val_loss.unwrap_or(f64::INFINITY);
                    epochs_since_best = cp.epochs_since_best;
                    lr_halvings = cp.lr_halvings;
                    epoch = cp.next_epoch;
                }
            }
        }

        let mut fit_span = Span::enter("train.fit");
        fit_span.record("samples", n as u64);
        fit_span.record("target_epochs", self.config.epochs as u64);
        fit_span.record("resume_epoch", epoch as u64);

        while epoch < self.config.epochs {
            // Pre-epoch snapshot for the restoring divergence policies;
            // Abort skips the clone cost.
            let snapshot = if self.config.on_divergence == DivergencePolicy::Abort {
                None
            } else {
                Some((net.clone(), opt.clone(), rng.clone(), indices.clone()))
            };

            match self.run_epoch(
                net,
                x,
                labels,
                validation,
                &mut indices,
                &mut rng,
                &mut opt,
                epoch,
            ) {
                Ok(epoch_stats) => {
                    let val_loss = epoch_stats.val_loss;
                    report.epochs.push(epoch_stats);
                    let mut stop = false;
                    if let (Some(patience), Some(vl)) = (self.config.early_stop_patience, val_loss)
                    {
                        // Improvements smaller than min_delta do not reset the
                        // counter — cross-entropy keeps creeping down forever on
                        // separable data, which is exactly when stopping should
                        // fire.
                        const MIN_DELTA: f64 = 1e-4;
                        if vl + MIN_DELTA < best_val_loss {
                            best_val_loss = vl;
                            epochs_since_best = 0;
                        } else {
                            epochs_since_best += 1;
                            if epochs_since_best >= patience {
                                stop = true;
                            }
                        }
                    }
                    epoch += 1;
                    if let Some(dir) = &checkpoint_dir {
                        let due = epoch.is_multiple_of(self.config.checkpoint_every);
                        if due || stop || epoch == self.config.epochs {
                            TrainCheckpoint {
                                version: CHECKPOINT_VERSION,
                                next_epoch: epoch,
                                network: net.clone(),
                                optimizer: opt.clone(),
                                rng: rng.clone(),
                                indices: indices.clone(),
                                report: report.clone(),
                                best_val_loss: best_val_loss.is_finite().then_some(best_val_loss),
                                epochs_since_best,
                                lr_halvings,
                            }
                            .save(dir)?;
                        }
                    }
                    if stop {
                        break;
                    }
                }
                Err(e)
                    if e.is_retryable() && self.config.on_divergence != DivergencePolicy::Abort =>
                {
                    let (net0, opt0, rng0, idx0) =
                        snapshot.expect("snapshot taken for non-abort policies");
                    match self.config.on_divergence {
                        DivergencePolicy::Rollback => {
                            *net = net0;
                            if report.epochs.is_empty() {
                                return Err(e);
                            }
                            return Ok(report);
                        }
                        DivergencePolicy::HalveLrRetry => {
                            if lr_halvings >= MAX_LR_HALVINGS {
                                return Err(e);
                            }
                            *net = net0;
                            opt = opt0;
                            rng = rng0;
                            indices = idx0;
                            opt.scale_learning_rate(0.5);
                            lr_halvings += 1;
                        }
                        DivergencePolicy::Abort => unreachable!("guarded above"),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        fit_span.record("epochs_run", report.epochs.len() as u64);
        fit_span.record("lr_halvings", lr_halvings as u64);
        if let Some(last) = report.epochs.last() {
            fit_span.record("final_loss", last.train_loss);
        }
        Ok(report)
    }

    /// Runs one epoch: shuffle, minibatch updates, per-batch numeric
    /// guards, and the end-of-epoch statistics/validation pass.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch(
        &self,
        net: &mut Network,
        x: &Matrix,
        labels: LabelSource<'_>,
        validation: Option<(&Matrix, &[usize])>,
        indices: &mut [usize],
        rng: &mut rand_chacha::ChaCha8Rng,
        opt: &mut OptimizerState,
        epoch: usize,
    ) -> Result<EpochStats, NnError> {
        let mut span = Span::enter("train.epoch");
        span.record("epoch", epoch as u64);
        let n = x.rows();
        let t = self.config.temperature;
        shuffle(indices, rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        let mut correct = 0usize;
        // Gradient-norm telemetry is computed only when tracing is on:
        // the extra O(params) pass is pure diagnostics and must not
        // change timing-insensitive results (it never touches values).
        let mut grad_sq_sum = 0.0;

        for chunk in indices.chunks(self.config.batch_size) {
            let xb = x.select_rows(chunk);
            let (logits, caches) = net.forward_train(&xb, rng)?;
            let (batch_loss, grad) = match labels {
                LabelSource::Hard(l) => {
                    let lb: Vec<usize> = chunk.iter().map(|&i| l[i]).collect();
                    let loss_val = loss::cross_entropy(&logits, &lb, t)?;
                    let g = loss::cross_entropy_grad(&logits, &lb, t)?;
                    let preds = logits.argmax_rows();
                    correct += preds.iter().zip(lb.iter()).filter(|(p, y)| p == y).count();
                    (loss_val, g)
                }
                LabelSource::Soft(s) => {
                    let sb = s.select_rows(chunk);
                    let loss_val = loss::soft_cross_entropy(&logits, &sb, t)?;
                    let g = loss::soft_cross_entropy_grad(&logits, &sb, t)?;
                    (loss_val, g)
                }
            };
            if !batch_loss.is_finite() {
                return Err(NnError::NumericDivergence {
                    epoch,
                    batch: batches,
                    detail: format!("training loss is {batch_loss}"),
                });
            }
            epoch_loss += batch_loss;

            let mut grads = net.backward(&caches, &grad)?;
            check_gradients_finite(&grads, epoch, batches)?;
            if trace::enabled() {
                grad_sq_sum += grad_sq_norm(&grads);
            }
            if let Some(max_norm) = self.config.grad_clip {
                clip_gradients(&mut grads, max_norm);
            }
            let opt = opt.as_optimizer();
            opt.tick();
            for (i, ((gw, gb), layer)) in grads
                .layers
                .iter()
                .zip(net.layers_mut().iter_mut())
                .enumerate()
            {
                opt.step(2 * i, layer.weights_mut().as_mut_slice(), gw.as_slice());
                opt.step(2 * i + 1, layer.bias_mut(), gb);
            }
            batches += 1;
        }

        // Weight guard once per epoch: an update that produced NaN/Inf
        // parameters poisons everything downstream.
        for (i, layer) in net.layers().iter().enumerate() {
            stats::check_matrix_finite(&format!("layer {i} weights"), layer.weights())
                .and_then(|()| stats::check_finite(&format!("layer {i} bias"), layer.bias()))
                .map_err(|e| NnError::NumericDivergence {
                    epoch,
                    batch: batches.saturating_sub(1),
                    detail: e.to_string(),
                })?;
        }

        let train_accuracy = match labels {
            LabelSource::Hard(_) => Some(correct as f64 / n as f64),
            LabelSource::Soft(_) => None,
        };
        let (val_loss, val_accuracy) = match validation {
            Some((vx, vy)) => {
                let logits = net.logits(vx)?;
                let vl = loss::cross_entropy(&logits, vy, t)?;
                if !vl.is_finite() {
                    return Err(NnError::NumericDivergence {
                        epoch,
                        batch: batches.saturating_sub(1),
                        detail: format!("validation loss is {vl}"),
                    });
                }
                (Some(vl), Some(loss::accuracy(&logits, vy)?))
            }
            None => (None, None),
        };
        let stats = EpochStats {
            epoch,
            train_loss: epoch_loss / batches.max(1) as f64,
            train_accuracy,
            val_loss,
            val_accuracy,
        };
        if trace::enabled() {
            let (epochs_total, batches_total) = train_counters();
            epochs_total.inc();
            batches_total.add(batches as u64);
            let grad_norm_mean = (grad_sq_sum / batches.max(1) as f64).sqrt();
            trace::event(
                "train.epoch_stats",
                &[
                    ("epoch", (epoch as u64).into()),
                    ("loss", stats.train_loss.into()),
                    ("accuracy", stats.train_accuracy.unwrap_or(f64::NAN).into()),
                    ("val_loss", stats.val_loss.unwrap_or(f64::NAN).into()),
                    ("grad_norm_mean", grad_norm_mean.into()),
                ],
            );
            span.record("batches", batches as u64);
            span.record("loss", stats.train_loss);
            if let Some(acc) = stats.train_accuracy {
                span.record("accuracy", acc);
            }
            if let Some(vl) = stats.val_loss {
                span.record("val_loss", vl);
            }
            span.record("grad_norm_mean", grad_norm_mean);
        }
        Ok(stats)
    }
}

/// Squared global L2 norm of the gradient (all layers, weights + biases).
fn grad_sq_norm(grads: &Gradients) -> f64 {
    let mut sq = 0.0;
    for (gw, gb) in &grads.layers {
        sq += gw.as_slice().iter().map(|g| g * g).sum::<f64>();
        sq += gb.iter().map(|g| g * g).sum::<f64>();
    }
    sq
}

/// Fails with [`NnError::NumericDivergence`] if any gradient element is
/// non-finite.
fn check_gradients_finite(grads: &Gradients, epoch: usize, batch: usize) -> Result<(), NnError> {
    for (i, (gw, gb)) in grads.layers.iter().enumerate() {
        stats::check_matrix_finite(&format!("layer {i} weight gradient"), gw)
            .and_then(|()| stats::check_finite(&format!("layer {i} bias gradient"), gb))
            .map_err(|e| NnError::NumericDivergence {
                epoch,
                batch,
                detail: e.to_string(),
            })?;
    }
    Ok(())
}

/// Rescales the whole gradient (all layers, weights + biases) to at most
/// `max_norm` in global L2 norm.
fn clip_gradients(grads: &mut Gradients, max_norm: f64) {
    let norm = grad_sq_norm(grads).sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for (gw, gb) in &mut grads.layers {
            for g in gw.as_mut_slice() {
                *g *= scale;
            }
            for g in gb {
                *g *= scale;
            }
        }
    }
}

/// Fisher–Yates shuffle with the crate's deterministic RNG.
fn shuffle(indices: &mut [usize], rng: &mut impl rand::Rng) {
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};

    fn blob_data(n_per_class: usize) -> (Matrix, Vec<usize>) {
        // Two well-separated Gaussian-ish blobs on a 4-D grid (deterministic).
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jitter = (i % 7) as f64 * 0.02;
            rows.push(vec![0.1 + jitter, 0.2, 0.1, 0.15 + jitter]);
            labels.push(0);
            rows.push(vec![0.9 - jitter, 0.8, 0.85, 0.9 - jitter]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn small_net(seed: u64) -> Network {
        NetworkBuilder::new(4)
            .layer(8, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let (x, y) = blob_data(32);
        let mut net = small_net(1);
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(30)
                .batch_size(16)
                .learning_rate(0.01),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.epochs.len() == 30);
        assert!(report.final_loss() < report.epochs[0].train_loss);
        assert!(report.final_accuracy().unwrap() > 0.95);
    }

    #[test]
    fn sgd_also_trains() {
        let (x, y) = blob_data(32);
        let mut net = small_net(2);
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(50)
                .batch_size(16)
                .learning_rate(0.1)
                .optimizer(OptimizerKind::Sgd { momentum: 0.9 }),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.final_accuracy().unwrap() > 0.9);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (x, y) = blob_data(16);
        let cfg = TrainConfig::new().epochs(5).batch_size(8).seed(99);
        let mut a = small_net(7);
        let mut b = small_net(7);
        let ra = Trainer::new(cfg.clone()).fit(&mut a, &x, &y).unwrap();
        let rb = Trainer::new(cfg).fit(&mut b, &x, &y).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.logits(&x).unwrap(), b.logits(&x).unwrap());
    }

    #[test]
    fn validation_stats_are_reported() {
        let (x, y) = blob_data(16);
        let (vx, vy) = blob_data(4);
        let mut net = small_net(3);
        let report = Trainer::new(TrainConfig::new().epochs(3).batch_size(8))
            .fit_labeled(&mut net, &x, LabelSource::Hard(&y), Some((&vx, &vy)))
            .unwrap();
        for e in &report.epochs {
            assert!(e.val_loss.is_some());
            assert!(e.val_accuracy.is_some());
        }
    }

    #[test]
    fn soft_label_training_matches_teacher_distribution() {
        let (x, y) = blob_data(32);
        // Teacher: train normally.
        let mut teacher = small_net(4);
        Trainer::new(
            TrainConfig::new()
                .epochs(30)
                .batch_size(16)
                .learning_rate(0.01),
        )
        .fit(&mut teacher, &x, &y)
        .unwrap();
        let soft = teacher.predict_proba(&x).unwrap();
        // Student: train on teacher's soft labels only.
        let mut student = small_net(5);
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(30)
                .batch_size(16)
                .learning_rate(0.01),
        )
        .fit_soft(&mut student, &x, &soft)
        .unwrap();
        assert!(report.epochs.iter().all(|e| e.train_accuracy.is_none()));
        // The student should agree with the teacher on most samples.
        let tp = teacher.predict(&x).unwrap();
        let sp = student.predict(&x).unwrap();
        let agree = tp.iter().zip(sp.iter()).filter(|(a, b)| a == b).count();
        assert!(agree as f64 / tp.len() as f64 > 0.9);
    }

    #[test]
    fn dropout_training_still_converges() {
        let (x, y) = blob_data(32);
        let mut net = NetworkBuilder::new(4)
            .layer(16, Activation::ReLU)
            .dropout(0.3)
            .layer(2, Activation::Identity)
            .seed(6)
            .build()
            .unwrap();
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(40)
                .batch_size(16)
                .learning_rate(0.01),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.final_accuracy().unwrap() > 0.9);
    }

    #[test]
    fn rejects_bad_configs() {
        let (x, y) = blob_data(4);
        let mut net = small_net(0);
        for cfg in [
            TrainConfig::new().epochs(0),
            TrainConfig::new().batch_size(0),
            TrainConfig::new().learning_rate(0.0),
            TrainConfig::new().temperature(0.0),
            TrainConfig::new().optimizer(OptimizerKind::Sgd { momentum: 1.5 }),
        ] {
            assert!(Trainer::new(cfg).fit(&mut net, &x, &y).is_err());
        }
    }

    #[test]
    fn rejects_label_mismatches() {
        let (x, _) = blob_data(4);
        let mut net = small_net(0);
        let trainer = Trainer::new(TrainConfig::new().epochs(1));
        assert!(trainer.fit(&mut net, &x, &[0, 1]).is_err()); // too few
        let bad: Vec<usize> = vec![5; x.rows()]; // out of range
        assert!(trainer.fit(&mut net, &x, &bad).is_err());
        let soft = Matrix::zeros(3, 2); // wrong rows
        assert!(trainer.fit_soft(&mut net, &x, &soft).is_err());
    }

    #[test]
    fn empty_training_set_errors() {
        let mut net = small_net(0);
        let x = Matrix::zeros(0, 4);
        assert!(Trainer::new(TrainConfig::new())
            .fit(&mut net, &x, &[])
            .is_err());
    }

    /// A deep *linear* net: with no saturating activation in the way,
    /// gradient magnitudes scale with the weights themselves, so a
    /// ruinous learning rate grows the parameters multiplicatively until
    /// f64 overflows — the classic exploding-gradient failure mode.
    fn linear_net(seed: u64) -> Network {
        NetworkBuilder::new(4)
            .layer(8, Activation::Identity)
            .layer(8, Activation::Identity)
            .layer(2, Activation::Identity)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn diverging_run_returns_numeric_divergence() {
        // An absurd learning rate makes SGD blow up exponentially: the
        // guard must surface a typed error instead of silently returning
        // NaN weights.
        let (x, y) = blob_data(32);
        let mut net = linear_net(9);
        let err = Trainer::new(
            TrainConfig::new()
                .epochs(30)
                .batch_size(16)
                .learning_rate(1e3)
                .optimizer(OptimizerKind::Sgd { momentum: 0.9 }),
        )
        .fit(&mut net, &x, &y)
        .unwrap_err();
        assert!(
            matches!(err, NnError::NumericDivergence { .. }),
            "expected NumericDivergence, got {err:?}"
        );
        // The guard fired before NaN weights could be committed as the
        // "result": an aborted run reports the error, and downstream code
        // never mistakes the poisoned network for a trained one.
    }

    #[test]
    fn gradient_clipping_keeps_training_stable() {
        let (x, y) = blob_data(32);
        let mut net = small_net(10);
        // Same ruinous learning rate, but with the global gradient norm
        // clipped hard the updates stay bounded and finite.
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(5)
                .batch_size(16)
                .learning_rate(1e3)
                .optimizer(OptimizerKind::Sgd { momentum: 0.9 })
                .grad_clip(1e-4),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.final_loss().is_finite());
        for layer in net.layers() {
            assert!(layer.weights().as_slice().iter().all(|w| w.is_finite()));
        }
    }

    #[test]
    fn rollback_policy_returns_last_good_epochs() {
        let (x, y) = blob_data(32);
        // Reference: a healthy run at a sane learning rate.
        let sane_cfg = TrainConfig::new()
            .epochs(3)
            .batch_size(16)
            .learning_rate(0.05)
            .optimizer(OptimizerKind::Sgd { momentum: 0.0 });
        let mut reference = small_net(11);
        let sane = Trainer::new(sane_cfg).fit(&mut reference, &x, &y).unwrap();
        assert_eq!(sane.epochs.len(), 3);

        // A run that diverges partway through (seed 12 at this rate blows
        // up in epoch 1) must roll back to its last completed epoch rather
        // than erroring out.
        let mut net = linear_net(12);
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(50)
                .batch_size(16)
                .learning_rate(1e3)
                .optimizer(OptimizerKind::Sgd { momentum: 0.9 })
                .on_divergence(DivergencePolicy::Rollback),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(
            !report.epochs.is_empty() && report.epochs.len() < 50,
            "expected a truncated report, got {} epochs",
            report.epochs.len()
        );
        // The returned network is the last pre-divergence snapshot, so
        // every parameter is still finite.
        for layer in net.layers() {
            assert!(layer.weights().as_slice().iter().all(|w| w.is_finite()));
        }
    }

    #[test]
    fn halve_lr_policy_rescues_a_too_hot_run() {
        let (x, y) = blob_data(32);
        // At batch size 2 this linear net blows up *within the first
        // epoch* for every rate down to 0.5 and is stable at 0.25. Each
        // divergence restores the pre-epoch snapshot — here the initial
        // state — and halves the rate, so 16.0 walks down six halvings
        // (16 → … → 0.25) and then completes every epoch.
        let hot_cfg = TrainConfig::new()
            .epochs(10)
            .batch_size(2)
            .learning_rate(16.0)
            .optimizer(OptimizerKind::Sgd { momentum: 0.9 })
            .on_divergence(DivergencePolicy::HalveLrRetry);
        let mut net = linear_net(12);
        let report = Trainer::new(hot_cfg).fit(&mut net, &x, &y).unwrap();
        assert_eq!(report.epochs.len(), 10);
        assert!(report.final_loss().is_finite());
        for layer in net.layers() {
            assert!(layer.weights().as_slice().iter().all(|w| w.is_finite()));
        }
        // Because every failed attempt died in epoch 0, each retry
        // restarted from the initial snapshot (network, optimizer, RNG,
        // shuffle order). The rescued run is therefore bit-identical to
        // simply training at the settled rate from the start.
        let mut settled = linear_net(12);
        let straight = Trainer::new(
            TrainConfig::new()
                .epochs(10)
                .batch_size(2)
                .learning_rate(0.25)
                .optimizer(OptimizerKind::Sgd { momentum: 0.9 }),
        )
        .fit(&mut settled, &x, &y)
        .unwrap();
        assert_eq!(report, straight);
        assert_eq!(net, settled);
    }

    #[test]
    fn rejects_degenerate_fault_tolerance_configs() {
        let (x, y) = blob_data(4);
        let mut net = small_net(0);
        for cfg in [
            TrainConfig::new().grad_clip(0.0),
            TrainConfig::new().grad_clip(f64::NAN),
            TrainConfig::new().checkpoint_every(0),
        ] {
            assert!(Trainer::new(cfg).fit(&mut net, &x, &y).is_err());
        }
    }

    #[test]
    fn high_temperature_training_converges() {
        // Distillation-style: train at T = 50 like the paper.
        let (x, y) = blob_data(32);
        let mut net = small_net(8);
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(60)
                .batch_size(16)
                .learning_rate(0.05)
                .temperature(50.0),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert!(report.final_accuracy().unwrap() > 0.9);
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};
    use std::path::PathBuf;

    fn blob_data(n_per_class: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jitter = (i % 7) as f64 * 0.02;
            rows.push(vec![0.1 + jitter, 0.2, 0.1, 0.15 + jitter]);
            labels.push(0);
            rows.push(vec![0.9 - jitter, 0.8, 0.85, 0.9 - jitter]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn small_net(seed: u64) -> Network {
        NetworkBuilder::new(4)
            .layer(8, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("maleva-trainer-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn interrupted_then_resumed_run_is_bit_identical() {
        let (x, y) = blob_data(24);
        let (vx, vy) = blob_data(6);
        let dir = scratch_dir("resume");

        // Uninterrupted reference run: 12 epochs straight through.
        let full_cfg = TrainConfig::new()
            .epochs(12)
            .batch_size(8)
            .learning_rate(0.05)
            .seed(42);
        let mut reference = small_net(21);
        let full_report = Trainer::new(full_cfg)
            .fit_labeled(&mut reference, &x, LabelSource::Hard(&y), Some((&vx, &vy)))
            .unwrap();

        // "Killed" run: the same recipe stops after 5 epochs, simulating
        // an interruption right after a checkpoint was written.
        let partial_cfg = TrainConfig::new()
            .epochs(5)
            .batch_size(8)
            .learning_rate(0.05)
            .seed(42)
            .checkpoint_dir(&dir)
            .checkpoint_every(1);
        let mut partial = small_net(21);
        Trainer::new(partial_cfg)
            .fit_labeled(&mut partial, &x, LabelSource::Hard(&y), Some((&vx, &vy)))
            .unwrap();

        // Resume to the full 12 epochs from the on-disk checkpoint. The
        // network passed in is a *fresh* one — everything comes from disk.
        let resume_cfg = TrainConfig::new()
            .epochs(12)
            .batch_size(8)
            .learning_rate(0.05)
            .seed(42)
            .checkpoint_dir(&dir)
            .resume(true);
        let mut resumed = small_net(21);
        let resumed_report = Trainer::new(resume_cfg)
            .fit_labeled(&mut resumed, &x, LabelSource::Hard(&y), Some((&vx, &vy)))
            .unwrap();

        assert_eq!(resumed_report, full_report, "reports must be bit-identical");
        assert_eq!(resumed, reference, "weights must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_checkpoint_starts_fresh() {
        let (x, y) = blob_data(8);
        let dir = scratch_dir("fresh");
        let cfg = TrainConfig::new()
            .epochs(3)
            .batch_size(8)
            .checkpoint_dir(&dir)
            .resume(true);
        let mut net = small_net(22);
        let report = Trainer::new(cfg).fit(&mut net, &x, &y).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert!(TrainCheckpoint::path_in(&dir).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_cadence_is_respected() {
        let (x, y) = blob_data(8);
        let dir = scratch_dir("cadence");
        let cfg = TrainConfig::new()
            .epochs(7)
            .batch_size(8)
            .checkpoint_dir(&dir)
            .checkpoint_every(3);
        let mut net = small_net(23);
        Trainer::new(cfg).fit(&mut net, &x, &y).unwrap();
        // Saves fire after epochs 3 and 6 — and at the end of the run, so
        // the final checkpoint carries all 7 epochs.
        let cp = TrainCheckpoint::load(&dir).unwrap().unwrap();
        assert_eq!(cp.next_epoch, 7);
        assert_eq!(cp.report.epochs.len(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_training_set() {
        let (x, y) = blob_data(8);
        let dir = scratch_dir("mismatch");
        let cfg = TrainConfig::new()
            .epochs(2)
            .batch_size(8)
            .checkpoint_dir(&dir);
        let mut net = small_net(24);
        Trainer::new(cfg.clone()).fit(&mut net, &x, &y).unwrap();
        // Resuming against a differently-sized training set must fail
        // loudly, not silently train on misaligned minibatches.
        let (x2, y2) = blob_data(5);
        let err = Trainer::new(cfg.epochs(4).resume(true))
            .fit(&mut net, &x2, &y2)
            .unwrap_err();
        assert!(matches!(err, NnError::Checkpoint { .. }), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod early_stop_tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};
    use maleva_linalg::Matrix;

    fn blobs(n: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let j = (i % 7) as f64 * 0.02;
            rows.push(vec![0.1 + j, 0.2, 0.1, 0.15]);
            labels.push(0);
            rows.push(vec![0.9 - j, 0.8, 0.85, 0.9]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn early_stopping_cuts_training_short() {
        let (x, y) = blobs(24);
        let (vx, vy) = blobs(6);
        let mut net = NetworkBuilder::new(4)
            .layer(8, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(5)
            .build()
            .unwrap();
        // This problem converges in a handful of epochs; with patience 3
        // the 200-epoch budget must not be exhausted.
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(200)
                .batch_size(16)
                .learning_rate(0.05)
                .early_stop_patience(3),
        )
        .fit_labeled(&mut net, &x, LabelSource::Hard(&y), Some((&vx, &vy)))
        .unwrap();
        assert!(
            report.epochs.len() < 200,
            "early stopping never fired ({} epochs)",
            report.epochs.len()
        );
        assert!(report.final_accuracy().unwrap() > 0.95);
    }

    #[test]
    fn early_stopping_without_validation_is_ignored() {
        let (x, y) = blobs(8);
        let mut net = NetworkBuilder::new(4)
            .layer(4, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(6)
            .build()
            .unwrap();
        let report = Trainer::new(
            TrainConfig::new()
                .epochs(7)
                .batch_size(8)
                .early_stop_patience(1),
        )
        .fit(&mut net, &x, &y)
        .unwrap();
        assert_eq!(report.epochs.len(), 7, "no validation set: run all epochs");
    }
}
