//! Property-based tests for the neural-network substrate: gradient
//! correctness over random architectures, softmax laws, and training
//! determinism.

use maleva_linalg::Matrix;
use maleva_nn::{loss, softmax, Activation, Network, NetworkBuilder, TrainConfig, Trainer};
use proptest::prelude::*;

/// Strategy: a random small architecture (input dim, hidden widths,
/// activation) plus a weight seed.
fn arch() -> impl Strategy<Value = (usize, Vec<usize>, Activation, u64)> {
    (
        2usize..6,
        prop::collection::vec(2usize..8, 1..3),
        prop::sample::select(vec![
            Activation::ReLU,
            Activation::Sigmoid,
            Activation::Tanh,
        ]),
        0u64..1_000,
    )
}

fn build(input: usize, hidden: &[usize], act: Activation, seed: u64) -> Network {
    let mut b = NetworkBuilder::new(input);
    for &h in hidden {
        b = b.layer(h, act);
    }
    b.layer(2, Activation::Identity)
        .seed(seed)
        .build()
        .expect("net")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn input_jacobian_matches_finite_differences((input, hidden, act, seed) in arch(),
                                                 raw in prop::collection::vec(-1.0f64..1.0, 8)) {
        let net = build(input, &hidden, act, seed);
        let sample: Vec<f64> = raw.into_iter().take(input).collect();
        prop_assume!(sample.len() == input);
        let jac = net.input_jacobian(&sample).expect("jacobian");
        let eps = 1e-6;
        for j in 0..input {
            let mut plus = sample.clone();
            plus[j] += eps;
            let mut minus = sample.clone();
            minus[j] -= eps;
            let zp = net.logits(&Matrix::row_vector(&plus)).expect("logits");
            let zm = net.logits(&Matrix::row_vector(&minus)).expect("logits");
            for c in 0..2 {
                let numeric = (zp.get(0, c) - zm.get(0, c)) / (2.0 * eps);
                // ReLU kinks can make individual checks off; allow a loose
                // tolerance plus an absolute floor.
                prop_assert!(
                    (numeric - jac.get(c, j)).abs() < 1e-4 + 1e-3 * numeric.abs(),
                    "J({c},{j}) numeric {numeric} vs analytic {}",
                    jac.get(c, j)
                );
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant(logits in prop::collection::vec(-20.0f64..20.0, 2..8),
                                  shift in -50.0f64..50.0,
                                  t in 0.5f64..10.0) {
        let shifted: Vec<f64> = logits.iter().map(|z| z + shift).collect();
        let a = softmax(&logits, t);
        let b = softmax(&shifted, t);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_stays_positive(logits in prop::collection::vec(-100.0f64..100.0, 1..10),
                                              t in 0.1f64..100.0) {
        let p = softmax(&logits, t);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn cross_entropy_is_nonnegative(seed in 0u64..500) {
        let net = build(3, &[4], Activation::ReLU, seed);
        let x = Matrix::from_fn(6, 3, |i, j| ((i * 5 + j * 3 + seed as usize) % 9) as f64 * 0.1);
        let logits = net.logits(&x).expect("logits");
        let labels = vec![0, 1, 0, 1, 0, 1];
        let l = loss::cross_entropy(&logits, &labels, 1.0).expect("loss");
        prop_assert!(l >= 0.0);
    }

    #[test]
    fn loss_gradient_is_zero_at_soft_target(seed in 0u64..200) {
        // When the soft target equals the model's own softmax output, the
        // gradient of soft cross-entropy w.r.t. logits vanishes.
        let net = build(3, &[4], Activation::Tanh, seed);
        let x = Matrix::from_fn(4, 3, |i, j| ((i + 2 * j + seed as usize) % 7) as f64 * 0.1);
        let logits = net.logits(&x).expect("logits");
        let soft = maleva_nn::softmax_rows(&logits, 1.0);
        let grad = loss::soft_cross_entropy_grad(&logits, &soft, 1.0).expect("grad");
        prop_assert!(grad.iter().all(|g| g.abs() < 1e-12));
    }

    #[test]
    fn training_is_deterministic_for_any_seed(data_seed in 0u64..100, train_seed in 0u64..100) {
        let x = Matrix::from_fn(16, 4, |i, j| ((i * 7 + j * 13 + data_seed as usize) % 10) as f64 * 0.1);
        let y: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let run = || {
            let mut net = build(4, &[6], Activation::ReLU, 3);
            Trainer::new(
                TrainConfig::new().epochs(3).batch_size(8).seed(train_seed),
            )
            .fit(&mut net, &x, &y)
            .expect("fit");
            net.logits(&x).expect("logits")
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn json_round_trip_is_exact(seed in 0u64..300) {
        let net = build(4, &[5, 3], Activation::Sigmoid, seed);
        let restored = Network::from_json(&net.to_json().expect("ser")).expect("de");
        let x = Matrix::from_fn(3, 4, |i, j| (i as f64 - j as f64) * 0.25);
        prop_assert_eq!(
            net.logits(&x).expect("a"),
            restored.logits(&x).expect("b")
        );
    }

    #[test]
    fn checkpoint_resume_is_bit_identical(data_seed in 0u64..40,
                                          train_seed in 0u64..40,
                                          epochs in 2usize..7,
                                          cut in 1usize..6) {
        // Interrupting a checkpointed run at *any* epoch and resuming it
        // must reproduce the uninterrupted run exactly — same per-epoch
        // stats, same final parameters.
        let cut = cut.min(epochs - 1);
        let x = Matrix::from_fn(16, 4, |i, j| ((i * 7 + j * 13 + data_seed as usize) % 10) as f64 * 0.1);
        let y: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let cfg = |n: usize| {
            TrainConfig::new().epochs(n).batch_size(8).seed(train_seed)
        };

        let mut reference = build(4, &[6], Activation::ReLU, 3);
        let ref_report = Trainer::new(cfg(epochs)).fit(&mut reference, &x, &y).expect("reference");

        let dir = std::env::temp_dir().join(format!(
            "maleva-prop-ckpt-{data_seed}-{train_seed}-{epochs}-{cut}"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // "Interrupted": run only the first `cut` epochs, checkpointing.
        let mut partial = build(4, &[6], Activation::ReLU, 3);
        Trainer::new(cfg(cut).checkpoint_dir(&dir))
            .fit(&mut partial, &x, &y)
            .expect("partial");
        // Resume with the full budget on a fresh network.
        let mut resumed = build(4, &[6], Activation::ReLU, 3);
        let resumed_report = Trainer::new(cfg(epochs).checkpoint_dir(&dir).resume(true))
            .fit(&mut resumed, &x, &y)
            .expect("resumed");
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(ref_report, resumed_report);
        prop_assert_eq!(reference, resumed);
    }

    #[test]
    fn probability_jacobian_columns_sum_to_zero((input, hidden, act, seed) in arch()) {
        let net = build(input, &hidden, act, seed);
        let sample: Vec<f64> = (0..input).map(|i| (i as f64 * 0.3).sin() * 0.5).collect();
        let jac = net.probability_jacobian(&sample, 1.0).expect("jacobian");
        for j in 0..input {
            let col: f64 = (0..2).map(|c| jac.get(c, j)).sum();
            prop_assert!(col.abs() < 1e-10, "column {j} sums to {col}");
        }
    }
}
