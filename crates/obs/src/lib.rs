//! Observability layer for the maleva workspace: structured tracing,
//! a shared metrics registry, and run-provenance manifests.
//!
//! The crate is deliberately **zero-dependency** (std only) so every
//! other crate — including the innermost hot loops in `maleva-nn` and
//! `maleva-attack` — can depend on it without widening the build.
//!
//! Three modules:
//!
//! * [`trace`] — a span-based tracer. `Span::enter("jsma.craft")`
//!   returns an RAII guard; enters, exits, and point events are written
//!   as newline-delimited JSON to a pluggable sink (file, stderr, an
//!   in-memory buffer for tests, or a null sink). When tracing is
//!   disabled — the default — every call site costs one relaxed atomic
//!   load, keeping instrumented paths bit-identical and essentially
//!   free.
//! * [`metrics`] — counters, gauges, and power-of-two latency
//!   histograms behind a [`metrics::Registry`], with a Prometheus
//!   text-exposition renderer. `maleva-serve` builds its per-server
//!   stats on these primitives; the trainer and attack batches count
//!   into a process-wide [`metrics::global`] registry.
//! * [`manifest`] — run-provenance manifests (seed, scale, config
//!   hash, crate versions, per-phase wall-clock) written as
//!   `manifest.json` next to `repro`/`train` outputs.
//! * [`slo`] — declarative SLO specs (latency thresholds over
//!   histograms, event ratios over counters) evaluated as multi-window
//!   burn-rate alarms against [`metrics::Registry`] snapshots, driven
//!   entirely by injected timestamps.
//! * [`report`] — aggregates a `trace.jsonl` into per-span and
//!   per-stage p50/p99 breakdowns with slowest-trace exemplars (the
//!   engine behind `maleva obs-report`).
//!
//! # Example
//!
//! ```
//! use maleva_obs::trace::{self, Sink, Span};
//!
//! let captured = trace::install_memory_sink();
//! {
//!     let mut span = Span::enter("example.work");
//!     span.record("rows", 128u64);
//!     trace::event("example.progress", &[("done", 64u64.into())]);
//! }
//! trace::install(Sink::Disabled).unwrap();
//! assert_eq!(captured.lines().len(), 3); // enter, event, exit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod manifest;
pub mod metrics;
pub mod report;
pub mod slo;
pub mod trace;

pub use manifest::{Manifest, ManifestBuilder};
pub use metrics::{Counter, Gauge, Histogram, MetricReading, Registry};
pub use slo::{BurnWindow, Objective, SloEngine, SloSpec, SloStatus};
pub use trace::{Sink, Span};
