//! Run-provenance manifests: what ran, with which seed, scale, and
//! configuration, and how long each phase took.
//!
//! A manifest is written as `manifest.json` next to `repro`/`train`
//! outputs. Serialization is hand-rolled (the crate is zero-dependency)
//! with a fixed field order and one scalar per line, so two manifests
//! from identical configurations are byte-identical except for the
//! `created_unix` timestamp and the `seconds` phase durations — the
//! golden tests normalize exactly those lines.

use std::io;
use std::path::Path;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// FNV-1a 64-bit hash, used to fingerprint a canonical configuration
/// string. Stable across platforms and releases.
pub fn fnv1a_64(data: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in data.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wall-clock record for one named phase of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase name, e.g. `"context"` or `"fig3a"`.
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

/// A completed provenance manifest. Build with [`ManifestBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Tool that produced the run (e.g. `"repro"`, `"maleva train"`).
    pub tool: String,
    /// Workspace version of the tool crate.
    pub version: String,
    /// Master RNG seed.
    pub seed: u64,
    /// Experiment scale label (`"paper"`, `"quick"`, `"tiny"`, …).
    pub scale: String,
    /// FNV-1a 64-bit hash of the canonical configuration string,
    /// rendered as 16 lowercase hex digits.
    pub config_hash: String,
    /// Unix timestamp (seconds) when the manifest was created.
    pub created_unix: u64,
    /// Crate name → version pairs, sorted by name.
    pub crates: Vec<(String, String)>,
    /// Per-phase wall-clock, in run order.
    pub phases: Vec<PhaseRecord>,
    /// Free-form key/value pairs (sorted by key), e.g. experiment
    /// selection or output paths.
    pub extra: Vec<(String, String)>,
}

impl Manifest {
    /// Renders the manifest as pretty-printed JSON with a fixed field
    /// order and one scalar per line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!("  \"tool\": {},\n", json_str(&self.tool)));
        out.push_str(&format!("  \"version\": {},\n", json_str(&self.version)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"scale\": {},\n", json_str(&self.scale)));
        out.push_str(&format!(
            "  \"config_hash\": {},\n",
            json_str(&self.config_hash)
        ));
        out.push_str(&format!("  \"created_unix\": {},\n", self.created_unix));
        out.push_str("  \"crates\": {\n");
        for (i, (name, version)) in self.crates.iter().enumerate() {
            let comma = if i + 1 < self.crates.len() { "," } else { "" };
            out.push_str(&format!(
                "    {}: {}{comma}\n",
                json_str(name),
                json_str(version)
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"phases\": [\n");
        for (i, phase) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"name\": {}, \"seconds\": {:.6} }}{comma}\n",
                json_str(&phase.name),
                phase.seconds
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"extra\": {\n");
        for (i, (k, v)) in self.extra.iter().enumerate() {
            let comma = if i + 1 < self.extra.len() { "," } else { "" };
            out.push_str(&format!("    {}: {}{comma}\n", json_str(k), json_str(v)));
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Writes `to_json()` to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The manifest JSON with `created_unix` and phase `seconds`
    /// values zeroed, for byte-stability comparisons modulo
    /// timestamps.
    pub fn to_json_normalized(&self) -> String {
        let mut normalized = self.clone();
        normalized.created_unix = 0;
        for phase in &mut normalized.phases {
            phase.seconds = 0.0;
        }
        normalized.to_json()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builder for [`Manifest`]. Captures `created_unix` at build time.
#[derive(Debug, Clone)]
pub struct ManifestBuilder {
    tool: String,
    version: String,
    seed: u64,
    scale: String,
    config_hash: String,
    crates: Vec<(String, String)>,
    phases: Vec<PhaseRecord>,
    extra: Vec<(String, String)>,
}

impl ManifestBuilder {
    /// Starts a manifest for `tool`. The version defaults to this
    /// crate's package version, which is the unified workspace version.
    pub fn new(tool: &str) -> Self {
        ManifestBuilder {
            tool: tool.to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            seed: 0,
            scale: String::new(),
            config_hash: format!("{:016x}", fnv1a_64("")),
            crates: vec![(
                "maleva-obs".to_string(),
                env!("CARGO_PKG_VERSION").to_string(),
            )],
            phases: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scale label.
    #[must_use]
    pub fn scale(mut self, scale: &str) -> Self {
        self.scale = scale.to_string();
        self
    }

    /// Hashes the canonical configuration string with [`fnv1a_64`].
    /// Callers should build the string deterministically (fixed key
    /// order) so equal configurations hash equally.
    #[must_use]
    pub fn config(mut self, canonical: &str) -> Self {
        self.config_hash = format!("{:016x}", fnv1a_64(canonical));
        self
    }

    /// Records a crate version (sorted into place at build time).
    #[must_use]
    pub fn crate_version(mut self, name: &str, version: &str) -> Self {
        self.crates.push((name.to_string(), version.to_string()));
        self
    }

    /// Appends a phase wall-clock record.
    #[must_use]
    pub fn phase(mut self, name: &str, elapsed: Duration) -> Self {
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            seconds: elapsed.as_secs_f64(),
        });
        self
    }

    /// Appends a phase record from raw seconds.
    #[must_use]
    pub fn phase_secs(mut self, name: &str, seconds: f64) -> Self {
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            seconds,
        });
        self
    }

    /// Adds a free-form key/value pair (sorted into place at build
    /// time).
    #[must_use]
    pub fn extra(mut self, key: &str, value: &str) -> Self {
        self.extra.push((key.to_string(), value.to_string()));
        self
    }

    /// Finalizes the manifest, stamping `created_unix` and sorting
    /// `crates` and `extra` for deterministic output.
    pub fn build(mut self) -> Manifest {
        self.crates.sort();
        self.crates.dedup();
        self.extra.sort();
        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Manifest {
            tool: self.tool,
            version: self.version,
            seed: self.seed,
            scale: self.scale,
            config_hash: self.config_hash,
            created_unix,
            crates: self.crates,
            phases: self.phases,
            extra: self.extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64("foobar"), 0x85944171f73967e8);
    }

    fn sample() -> Manifest {
        ManifestBuilder::new("repro")
            .seed(42)
            .scale("quick")
            .config("scale=quick seed=42 exp=all")
            .crate_version("maleva-core", "0.1.0")
            .phase_secs("context", 1.25)
            .phase_secs("fig3a", 10.5)
            .extra("exp", "all")
            .build()
    }

    #[test]
    fn json_has_fixed_field_order() {
        let json = sample().to_json();
        let tool_pos = json.find("\"tool\"").expect("tool");
        let seed_pos = json.find("\"seed\"").expect("seed");
        let phases_pos = json.find("\"phases\"").expect("phases");
        assert!(tool_pos < seed_pos && seed_pos < phases_pos);
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("{ \"name\": \"fig3a\", \"seconds\": 10.500000 }"));
    }

    #[test]
    fn normalized_json_is_byte_stable() {
        let a = sample();
        std::thread::sleep(Duration::from_millis(5));
        let mut b = sample();
        // Simulate different wall-clock readings.
        b.phases[0].seconds = 2.75;
        assert_eq!(a.to_json_normalized(), b.to_json_normalized());
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn config_hash_is_deterministic_and_sensitive() {
        let a = ManifestBuilder::new("t").config("seed=42").build();
        let b = ManifestBuilder::new("t").config("seed=42").build();
        let c = ManifestBuilder::new("t").config("seed=43").build();
        assert_eq!(a.config_hash, b.config_hash);
        assert_ne!(a.config_hash, c.config_hash);
        assert_eq!(a.config_hash.len(), 16);
    }

    #[test]
    fn write_to_roundtrip() {
        let path = std::env::temp_dir().join("maleva-obs-manifest-test.json");
        let m = sample();
        m.write_to(&path).expect("write manifest");
        let text = std::fs::read_to_string(&path).expect("read manifest");
        assert_eq!(text, m.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
