//! Counters, gauges, and power-of-two histograms behind a named
//! registry with a Prometheus text-exposition renderer.
//!
//! All primitives are lock-free on the record path (relaxed atomics);
//! the registry only takes a lock on registration and rendering. The
//! histogram layout is shared with `serve::metrics`: bucket `i` counts
//! samples in `[2^(i-1), 2^i)` (bucket 0 holds zeros), and samples at
//! or above the top bucket bound saturate into the last bucket rather
//! than being dropped.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of power-of-two histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Maps a sample to its power-of-two bucket. Zero lands in bucket 0;
/// samples at or above `2^(HISTOGRAM_BUCKETS-1)` saturate into the
/// last bucket.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// A fixed-size power-of-two histogram with total count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (in whatever unit the caller uses
    /// consistently — the serving layer records microseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds.
    #[inline]
    pub fn record_duration_us(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound (exclusive) of bucket `i`, i.e. `2^i`. The last
    /// bucket is unbounded in practice (saturation), so its reported
    /// bound is a cap, not a maximum observed value.
    pub fn bucket_upper(i: usize) -> u64 {
        1u64 << i.min(63)
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket at which the cumulative count reaches
    /// `q * count`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        Self::quantile_of_buckets(&self.snapshot_buckets(), q)
    }

    /// [`Histogram::quantile`] over an externally held bucket vector —
    /// e.g. buckets merged across several histograms (the sharded
    /// server merges per-shard snapshots and reads percentiles off the
    /// combined distribution).
    pub fn quantile_of_buckets(counts: &[u64], q: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= threshold {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// A copy of the per-bucket counts.
    pub fn snapshot_buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Raises this histogram monotonically toward an externally merged
    /// target distribution: each bucket (and the sum) is bumped by the
    /// positive delta between `target_buckets` / `target_sum` and the
    /// current values, and the count grows by the bucket deltas.
    ///
    /// This is the aggregation primitive for merge-on-read metrics: an
    /// aggregate histogram absorbs per-shard snapshots without ever
    /// double-counting, provided callers serialize their calls (deltas
    /// are computed read-then-add). Buckets beyond
    /// [`HISTOGRAM_BUCKETS`] are ignored; a shrinking target is a no-op
    /// for the affected buckets (monotonic by construction).
    pub fn raise_to(&self, target_buckets: &[u64], target_sum: u64) {
        let mut grew = 0u64;
        for (bucket, &target) in self.buckets.iter().zip(target_buckets) {
            let current = bucket.load(Ordering::Relaxed);
            if target > current {
                bucket.fetch_add(target - current, Ordering::Relaxed);
                grew += target - current;
            }
        }
        if grew > 0 {
            self.count.fetch_add(grew, Ordering::Relaxed);
        }
        let current_sum = self.sum.load(Ordering::Relaxed);
        if target_sum > current_sum {
            self.sum
                .fetch_add(target_sum - current_sum, Ordering::Relaxed);
        }
    }
}

/// The kind and handle of a registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
    /// Whether the help-text-mismatch warning already fired for this
    /// name — re-registration with different help warns once, not per
    /// call site execution.
    help_warned: bool,
}

/// A point-in-time reading of one registered metric, as returned by
/// [`Registry::read`]. Histograms carry their full power-of-two bucket
/// counts so consumers (e.g. the SLO engine in [`crate::slo`]) can
/// compute threshold-exceedance fractions from window deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricReading {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram bucket counts (length [`HISTOGRAM_BUCKETS`]), total
    /// count, and sum.
    Histogram {
        /// Per-bucket counts; bucket `i` covers `[2^(i-1), 2^i)`.
        buckets: Vec<u64>,
        /// Total recorded samples.
        count: u64,
        /// Sum of recorded samples.
        sum: u64,
    },
}

/// A named collection of metrics that renders to Prometheus text
/// exposition format. Registration is idempotent: registering the same
/// name and kind twice returns the existing handle.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or fetches) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
        .unwrap_or_else(|| Arc::new(Counter::new()))
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
        .unwrap_or_else(|| Arc::new(Gauge::new()))
    }

    /// Registers (or fetches) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
        .unwrap_or_else(|| Arc::new(Histogram::new()))
    }

    /// Shared lookup-or-insert. On a name collision with a different
    /// kind the caller gets a detached metric (registered nothing) so
    /// instrumentation never panics; the mismatch is a programming
    /// error surfaced by the returned handle not appearing in renders.
    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Metric,
        downcast: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Option<Arc<T>> {
        let name = sanitize_name(name);
        let mut entries = match self.entries.lock() {
            Ok(e) => e,
            Err(p) => p.into_inner(),
        };
        if let Some(entry) = entries.iter_mut().find(|e| e.name == name) {
            // Same name, different help: almost always a programming
            // error (two call sites disagreeing about what the series
            // means). Keep the first help string but say so — once.
            if entry.help != help && !entry.help_warned {
                entry.help_warned = true;
                eprintln!(
                    "maleva-obs: metric `{name}` re-registered with different help \
                     text; keeping {:?}, ignoring {:?}",
                    entry.help, help
                );
            }
            return downcast(&entry.metric);
        }
        let metric = make();
        let handle = downcast(&metric);
        entries.push(Entry {
            name,
            help: help.to_string(),
            metric,
            help_warned: false,
        });
        handle
    }

    /// Reads the current value of the metric registered under `name`
    /// (after the same sanitization registration applies). Returns
    /// `None` for unknown names.
    pub fn read(&self, name: &str) -> Option<MetricReading> {
        let name = sanitize_name(name);
        let entries = match self.entries.lock() {
            Ok(e) => e,
            Err(p) => p.into_inner(),
        };
        let entry = entries.iter().find(|e| e.name == name)?;
        Some(match &entry.metric {
            Metric::Counter(c) => MetricReading::Counter(c.get()),
            Metric::Gauge(g) => MetricReading::Gauge(g.get()),
            Metric::Histogram(h) => MetricReading::Histogram {
                buckets: h.snapshot_buckets(),
                count: h.count(),
                sum: h.sum(),
            },
        })
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format (`# HELP` / `# TYPE` headers, cumulative histogram
    /// buckets with `le` labels, `_sum` and `_count` series).
    pub fn render_prometheus(&self) -> String {
        let entries = match self.entries.lock() {
            Ok(e) => e,
            Err(p) => p.into_inner(),
        };
        let mut out = String::new();
        for entry in entries.iter() {
            let name = &entry.name;
            match &entry.metric {
                Metric::Counter(c) => {
                    render_header(&mut out, name, &entry.help, "counter");
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    render_header(&mut out, name, &entry.help, "gauge");
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    render_header(&mut out, name, &entry.help, "histogram");
                    let buckets = h.snapshot_buckets();
                    let mut cumulative = 0u64;
                    for (i, c) in buckets.iter().enumerate() {
                        cumulative += c;
                        // Skip leading all-zero buckets to keep output
                        // compact, but always render at least the
                        // occupied range and the +Inf bucket.
                        if cumulative == 0 && i < HISTOGRAM_BUCKETS - 1 {
                            continue;
                        }
                        if i == HISTOGRAM_BUCKETS - 1 {
                            break;
                        }
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            Histogram::bucket_upper(i)
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

fn render_header(out: &mut String, name: &str, help: &str, kind: &str) {
    if !help.is_empty() {
        out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
    }
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

/// Escapes help text for the exposition format: `\` and newlines would
/// otherwise corrupt the line-oriented output.
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Replaces characters outside `[a-zA-Z0-9_:]` with `_` so any
/// dotted/hyphenated internal name is a valid Prometheus metric name.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The process-wide registry used by trainer and attack
/// instrumentation. Per-server metrics in `maleva-serve` use their own
/// [`Registry`] instance so concurrent servers in one process do not
/// collide.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_saturation() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1: [1, 2)
        h.record(8); // bucket 4: [8, 16)
        h.record(u64::MAX); // saturates into last bucket
        let buckets = h.snapshot_buckets();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[4], 1);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantiles_pin_both_extremes() {
        let h = Histogram::new();
        // All samples tiny: every quantile is the smallest occupied bound.
        for _ in 0..100 {
            h.record(1);
        }
        assert_eq!(h.quantile(0.0), 2);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 2);
        // Add huge saturating samples: the high quantiles move to the cap.
        for _ in 0..100 {
            h.record(u64::MAX);
        }
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(
            h.quantile(1.0),
            Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1)
        );
        assert_eq!(h.count(), 200);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn quantile_of_buckets_matches_live_histogram() {
        let h = Histogram::new();
        for v in [1u64, 8, 8, 1000, u64::MAX] {
            h.record(v);
        }
        let buckets = h.snapshot_buckets();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(Histogram::quantile_of_buckets(&buckets, q), h.quantile(q));
        }
        assert_eq!(Histogram::quantile_of_buckets(&[], 0.5), 0);
    }

    #[test]
    fn raise_to_is_monotonic_and_idempotent() {
        let h = Histogram::new();
        h.record(1);
        let mut target = h.snapshot_buckets();
        target[4] = 3; // three samples in [8, 16)
        h.raise_to(&target, 1 + 3 * 8);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 25);
        assert_eq!(h.snapshot_buckets()[4], 3);
        // Re-applying the same target changes nothing.
        h.raise_to(&target, 25);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 25);
        // A shrinking target is ignored per bucket.
        target[4] = 1;
        h.raise_to(&target, 10);
        assert_eq!(h.snapshot_buckets()[4], 3);
        assert_eq!(h.sum(), 25);
    }

    #[test]
    fn registry_is_idempotent_and_shares_handles() {
        let r = Registry::new();
        let a = r.counter("requests_total", "Total requests.");
        let b = r.counter("requests_total", "Total requests.");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 2);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("reqs_total", "Requests.").add(3);
        r.gauge("cache_entries", "Entries.").set(12);
        let h = r.histogram("latency_us", "Latency.");
        h.record(5);
        h.record(u64::MAX);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"), "{text}");
        assert!(text.contains("reqs_total 3"), "{text}");
        assert!(text.contains("# TYPE cache_entries gauge"), "{text}");
        assert!(text.contains("cache_entries 12"), "{text}");
        assert!(text.contains("# TYPE latency_us histogram"), "{text}");
        assert!(text.contains("latency_us_bucket{le=\"8\"} 1"), "{text}");
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("latency_us_count 2"), "{text}");
    }

    #[test]
    fn re_registration_with_different_help_keeps_first_and_shares_handle() {
        let r = Registry::new();
        let a = r.counter("dup_total", "First help.");
        // Different help: warns (once, to stderr) but still returns the
        // same underlying counter, and rendering keeps the first help.
        let b = r.counter("dup_total", "Second help.");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP dup_total First help."), "{text}");
        assert!(!text.contains("Second help."), "{text}");
    }

    #[test]
    fn help_text_is_escaped_in_exposition_output() {
        let r = Registry::new();
        r.counter("tricky_total", "line one\nline two with back\\slash")
            .inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP tricky_total line one\\nline two with back\\\\slash"),
            "{text}"
        );
        // The renderer output stays one-record-per-line.
        assert!(
            text.lines().all(|l| !l.starts_with("line two")),
            "raw newline leaked into exposition output: {text}"
        );
    }

    #[test]
    fn read_by_name_returns_current_values() {
        let r = Registry::new();
        r.counter("reads_total", "Reads.").add(3);
        r.gauge("depth", "Depth.").set(-2);
        let h = r.histogram("lat_us", "Latency.");
        h.record(5);
        h.record(9);
        assert_eq!(r.read("reads_total"), Some(MetricReading::Counter(3)));
        assert_eq!(r.read("depth"), Some(MetricReading::Gauge(-2)));
        match r.read("lat_us") {
            Some(MetricReading::Histogram {
                buckets,
                count,
                sum,
            }) => {
                assert_eq!(count, 2);
                assert_eq!(sum, 14);
                assert_eq!(buckets.len(), HISTOGRAM_BUCKETS);
                assert_eq!(buckets[3], 1); // 5 in [4, 8)
                assert_eq!(buckets[4], 1); // 9 in [8, 16)
            }
            other => panic!("unexpected reading: {other:?}"),
        }
        // Dotted names resolve through the same sanitization as
        // registration did.
        assert_eq!(r.read("missing"), None);
        r.counter("dotted.name_total", "Dotted.").inc();
        assert_eq!(r.read("dotted.name_total"), Some(MetricReading::Counter(1)));
    }

    #[test]
    fn names_are_sanitized_for_prometheus() {
        let r = Registry::new();
        r.counter("jsma.rows-total", "Rows.").inc();
        let text = r.render_prometheus();
        assert!(text.contains("jsma_rows_total 1"), "{text}");
    }
}
