//! Aggregates a `trace.jsonl` file into a per-stage critical-path
//! report: p50/p99 per span name, the six-stage request breakdown, and
//! slowest-trace exemplars. Backs the `maleva obs-report` subcommand.
//!
//! The crate is zero-dependency, so this module carries its own
//! minimal JSON reader. It only needs to understand the tracer's own
//! output shape (one flat object per line, with at most one nested
//! `"fields"` object of scalar values) but is written as a small
//! general value parser so malformed lines degrade to a counted parse
//! error instead of corrupting the aggregate.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The canonical request-stage taxonomy, in pipeline order. Every
/// `serve.request` span records one `stage_<name>_us` field per entry;
/// the six stages sum (within bucket quantization) to the request
/// span's duration.
pub const STAGES: &[&str] = &[
    "queue_wait",
    "batch_wait",
    "cache_lookup",
    "sentinel_check",
    "inference",
    "serialize",
];

/// Power-of-two bucket index shared with the metrics histograms:
/// 0 holds zeros, bucket `i` covers `[2^(i-1), 2^i)`.
fn bucket_index(value: u64) -> u32 {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros()
    }
}

/// Absolute slack (µs) under which a stage-sum mismatch is attributed
/// to sub-microsecond truncation of six stage clocks plus scheduler
/// wake-up gaps, not to a missing stage.
const STAGE_SUM_ABS_SLACK_US: u64 = 16;

/// Whether the summed stages account for the request duration within
/// one power-of-two bucket (the acceptance tolerance), with a small
/// absolute floor so microsecond truncation on sub-bucket requests
/// does not register as a gap.
pub fn stage_sum_within_tolerance(dur_us: u64, stage_sum_us: u64) -> bool {
    dur_us.abs_diff(stage_sum_us) <= STAGE_SUM_ABS_SLACK_US
        || bucket_index(dur_us).abs_diff(bucket_index(stage_sum_us)) <= 1
}

// ---------------------------------------------------------------------
// Minimal JSON value parser (tracer-line subset, tolerant).

/// A parsed JSON scalar or container.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    /// All numbers; trace ids fit f64 in practice (< 2^53 per process).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unexpected end")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

fn parse_line(line: &str) -> Result<Json, String> {
    let mut p = Parser::new(line);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Aggregation.

/// Exact nearest-rank percentile over an unsorted sample vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Duration statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Number of exit records.
    pub count: usize,
    /// Median duration (µs).
    pub p50_us: u64,
    /// 99th-percentile duration (µs).
    pub p99_us: u64,
    /// Maximum duration (µs).
    pub max_us: u64,
    /// Total duration (µs) — the critical-path weight of this name.
    pub total_us: u64,
}

/// Duration statistics for one request stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// Number of requests carrying this stage.
    pub count: usize,
    /// Median stage time (µs).
    pub p50_us: u64,
    /// 99th-percentile stage time (µs).
    pub p99_us: u64,
    /// Total stage time (µs) across requests.
    pub total_us: u64,
}

/// One slow-request exemplar: the full stage vector of one of the
/// slowest traced requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Wire trace id (0 if the request carried none).
    pub trace_id: u64,
    /// Server-side span id.
    pub span: u64,
    /// Request duration (µs).
    pub dur_us: u64,
    /// `(stage, µs)` pairs in [`STAGES`] order (missing stages as 0).
    pub stages: Vec<(&'static str, u64)>,
}

/// The aggregate over one trace file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceReport {
    /// Total lines read.
    pub total_records: usize,
    /// Lines that failed to parse (counted, not fatal).
    pub parse_errors: usize,
    /// Per-span-name stats, sorted by total duration descending.
    pub span_stats: Vec<SpanStat>,
    /// Per-stage stats over `serve.request` exits, in [`STAGES`] order.
    pub stage_stats: Vec<StageStat>,
    /// `serve.request` exits carrying all six stage fields.
    pub staged_requests: usize,
    /// Of those, how many had stages summing to the span duration
    /// within tolerance ([`stage_sum_within_tolerance`]).
    pub stage_sum_within_tolerance: usize,
    /// Distinct wire trace ids seen on client-side spans.
    pub client_traces: usize,
    /// Distinct wire trace ids seen on server-side request spans.
    pub server_traces: usize,
    /// Trace ids seen on **both** sides — fully joined client→server.
    pub joined_traces: usize,
    /// The slowest `serve.request` spans, worst first.
    pub exemplars: Vec<Exemplar>,
}

impl TraceReport {
    /// Fraction of staged requests whose stages sum to the request
    /// duration within tolerance (1.0 when there are none).
    pub fn stage_coverage_frac(&self) -> f64 {
        if self.staged_requests == 0 {
            1.0
        } else {
            self.stage_sum_within_tolerance as f64 / self.staged_requests as f64
        }
    }

    /// Renders the human-readable report text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace records: {} ({} parse errors)\n",
            self.total_records, self.parse_errors
        ));
        out.push_str(&format!(
            "traces: {} client-side, {} server-side, {} joined end-to-end\n",
            self.client_traces, self.server_traces, self.joined_traces
        ));
        out.push_str("\nspans (by total time):\n");
        out.push_str(&format!(
            "  {:<24} {:>8} {:>10} {:>10} {:>10}\n",
            "name", "count", "p50_us", "p99_us", "max_us"
        ));
        for s in &self.span_stats {
            out.push_str(&format!(
                "  {:<24} {:>8} {:>10} {:>10} {:>10}\n",
                s.name, s.count, s.p50_us, s.p99_us, s.max_us
            ));
        }
        if self.staged_requests > 0 {
            out.push_str(&format!(
                "\nrequest stages ({} staged requests, {:.1}% sum within ±1 bucket):\n",
                self.staged_requests,
                self.stage_coverage_frac() * 100.0
            ));
            out.push_str(&format!(
                "  {:<16} {:>8} {:>10} {:>10} {:>12}\n",
                "stage", "count", "p50_us", "p99_us", "total_us"
            ));
            for s in &self.stage_stats {
                out.push_str(&format!(
                    "  {:<16} {:>8} {:>10} {:>10} {:>12}\n",
                    s.stage, s.count, s.p50_us, s.p99_us, s.total_us
                ));
            }
        }
        if !self.exemplars.is_empty() {
            out.push_str("\nslowest requests:\n");
            for e in &self.exemplars {
                let stages: Vec<String> = e
                    .stages
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(k, v)| format!("{k}={v}us"))
                    .collect();
                out.push_str(&format!(
                    "  trace {} span {}: {}us [{}]\n",
                    e.trace_id,
                    e.span,
                    e.dur_us,
                    stages.join(" ")
                ));
            }
        }
        out
    }
}

/// How many exemplars [`analyze_lines`] keeps by default.
pub const DEFAULT_TOP: usize = 5;

/// Aggregates tracer JSONL lines into a [`TraceReport`], keeping the
/// `top` slowest request exemplars.
pub fn analyze_lines<'a>(lines: impl Iterator<Item = &'a str>, top: usize) -> TraceReport {
    let mut report = TraceReport::default();
    let mut durations: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut stage_samples: Vec<Vec<u64>> = vec![Vec::new(); STAGES.len()];
    let mut client_ids: Vec<u64> = Vec::new();
    let mut server_ids: Vec<u64> = Vec::new();
    let mut exemplars: Vec<Exemplar> = Vec::new();

    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        report.total_records += 1;
        let record = match parse_line(line) {
            Ok(r) => r,
            Err(_) => {
                report.parse_errors += 1;
                continue;
            }
        };
        let ev = record.get("ev").and_then(Json::as_str).unwrap_or("");
        let name = record.get("name").and_then(Json::as_str).unwrap_or("");
        let fields = record.get("fields");
        let field_u64 =
            |key: &str| -> Option<u64> { fields.and_then(|f| f.get(key)).and_then(Json::as_u64) };
        if ev != "exit" {
            // Trace-context linking also rides on events (e.g. batch
            // membership); count their trace ids toward the server side.
            if ev == "event" {
                if let Some(tid) = field_u64("trace_id") {
                    if name.starts_with("serve.") || name.starts_with("slo.") {
                        server_ids.push(tid);
                    }
                }
            }
            continue;
        }
        let dur_us = record.get("dur_ns").and_then(Json::as_u64).unwrap_or(0) / 1_000;
        durations.entry(name.to_string()).or_default().push(dur_us);

        let trace_id = field_u64("trace_id");
        if let Some(tid) = trace_id {
            if name.starts_with("client.") {
                client_ids.push(tid);
            } else if name.starts_with("serve.") {
                server_ids.push(tid);
            }
        }

        if name == "serve.request" {
            let stages: Vec<Option<u64>> = STAGES
                .iter()
                .map(|s| field_u64(&format!("stage_{s}_us")))
                .collect();
            if stages.iter().all(Option::is_some) {
                report.staged_requests += 1;
                let mut sum = 0u64;
                for (i, v) in stages.iter().enumerate() {
                    let v = v.unwrap_or(0);
                    stage_samples[i].push(v);
                    sum += v;
                }
                if stage_sum_within_tolerance(dur_us, sum) {
                    report.stage_sum_within_tolerance += 1;
                }
                exemplars.push(Exemplar {
                    trace_id: trace_id.unwrap_or(0),
                    span: record.get("span").and_then(Json::as_u64).unwrap_or(0),
                    dur_us,
                    stages: STAGES
                        .iter()
                        .zip(stages.iter())
                        .map(|(s, v)| (*s, v.unwrap_or(0)))
                        .collect(),
                });
                exemplars.sort_by_key(|e| std::cmp::Reverse(e.dur_us));
                exemplars.truncate(top);
            }
        }
    }

    report.span_stats = durations
        .into_iter()
        .map(|(name, mut ds)| {
            ds.sort_unstable();
            SpanStat {
                name,
                count: ds.len(),
                p50_us: percentile(&ds, 0.50),
                p99_us: percentile(&ds, 0.99),
                max_us: *ds.last().unwrap_or(&0),
                total_us: ds.iter().sum(),
            }
        })
        .collect();
    report
        .span_stats
        .sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

    report.stage_stats = STAGES
        .iter()
        .zip(stage_samples)
        .map(|(stage, mut ds)| {
            ds.sort_unstable();
            StageStat {
                stage,
                count: ds.len(),
                p50_us: percentile(&ds, 0.50),
                p99_us: percentile(&ds, 0.99),
                total_us: ds.iter().sum(),
            }
        })
        .collect();

    client_ids.sort_unstable();
    client_ids.dedup();
    server_ids.sort_unstable();
    server_ids.dedup();
    report.client_traces = client_ids.len();
    report.server_traces = server_ids.len();
    report.joined_traces = client_ids
        .iter()
        .filter(|id| server_ids.binary_search(id).is_ok())
        .count();
    report.exemplars = exemplars;
    report
}

/// Reads and aggregates a trace file.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be read.
pub fn analyze_file(path: impl AsRef<Path>, top: usize) -> io::Result<TraceReport> {
    let text = std::fs::read_to_string(path)?;
    Ok(analyze_lines(text.lines(), top))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_line(span: u64, trace: u64, dur_us: u64, stages: [u64; 6]) -> String {
        format!(
            "{{\"ev\":\"exit\",\"span\":{span},\"name\":\"serve.request\",\"thread\":1,\
             \"t_ns\":1000,\"dur_ns\":{},\"fields\":{{\"trace_id\":{trace},\
             \"stage_queue_wait_us\":{},\"stage_batch_wait_us\":{},\
             \"stage_cache_lookup_us\":{},\"stage_sentinel_check_us\":{},\
             \"stage_inference_us\":{},\"stage_serialize_us\":{}}}}}",
            dur_us * 1000,
            stages[0],
            stages[1],
            stages[2],
            stages[3],
            stages[4],
            stages[5]
        )
    }

    fn client_line(span: u64, trace: u64, dur_us: u64) -> String {
        format!(
            "{{\"ev\":\"exit\",\"span\":{span},\"name\":\"client.request\",\"thread\":2,\
             \"t_ns\":900,\"dur_ns\":{},\"fields\":{{\"trace_id\":{trace},\"attempts\":1}}}}",
            dur_us * 1000
        )
    }

    #[test]
    fn parser_handles_tracer_shapes() {
        let v = parse_line(
            "{\"ev\":\"exit\",\"span\":3,\"name\":\"a.b\",\"thread\":1,\"t_ns\":99,\
             \"dur_ns\":18,\"fields\":{\"ok\":true,\"msg\":\"x\\\"y\",\"f\":1.5,\"n\":null}}",
        )
        .expect("parse");
        assert_eq!(v.get("span").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("a.b"));
        let fields = v.get("fields").expect("fields");
        assert_eq!(fields.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(fields.get("msg").and_then(Json::as_str), Some("x\"y"));
        assert_eq!(fields.get("f"), Some(&Json::Num(1.5)));
        assert_eq!(fields.get("n"), Some(&Json::Null));
        assert!(parse_line("{oops").is_err());
        assert!(parse_line("{}trailing").is_err());
    }

    #[test]
    fn aggregates_stages_and_joins_traces() {
        let lines = [
            client_line(10, 777, 510),
            request_line(11, 777, 500, [100, 200, 5, 5, 180, 10]),
            request_line(12, 778, 80, [10, 20, 2, 2, 40, 6]),
            // Server-only trace (no client span in this file).
            request_line(13, 999, 50, [5, 10, 1, 1, 30, 3]),
            "not json at all".to_string(),
        ];
        let report = analyze_lines(lines.iter().map(String::as_str), 2);
        assert_eq!(report.total_records, 5);
        assert_eq!(report.parse_errors, 1);
        assert_eq!(report.staged_requests, 3);
        assert_eq!(report.stage_sum_within_tolerance, 3);
        assert!((report.stage_coverage_frac() - 1.0).abs() < 1e-12);
        assert_eq!(report.client_traces, 1);
        assert_eq!(report.server_traces, 3);
        assert_eq!(report.joined_traces, 1);
        // Exemplars: worst first, truncated to top.
        assert_eq!(report.exemplars.len(), 2);
        assert_eq!(report.exemplars[0].trace_id, 777);
        assert_eq!(report.exemplars[0].dur_us, 500);
        // Stage stats are in taxonomy order with correct counts.
        assert_eq!(report.stage_stats.len(), STAGES.len());
        assert_eq!(report.stage_stats[0].stage, "queue_wait");
        assert_eq!(report.stage_stats[0].count, 3);
        assert_eq!(report.stage_stats[4].stage, "inference");
        assert_eq!(report.stage_stats[4].total_us, 250);
        let text = report.render_text();
        assert!(text.contains("serve.request"), "{text}");
        assert!(text.contains("queue_wait"), "{text}");
        assert!(text.contains("trace 777"), "{text}");
    }

    #[test]
    fn stage_sum_tolerance_is_one_bucket_with_truncation_floor() {
        // Exact: fine.
        assert!(stage_sum_within_tolerance(1000, 1000));
        // One bucket off: 1000 is in (512,1024], 400 in (256,512].
        assert!(stage_sum_within_tolerance(1000, 400));
        // Two buckets off: not fine.
        assert!(!stage_sum_within_tolerance(1000, 200));
        // Sub-bucket truncation noise at the tiny end is absorbed.
        assert!(stage_sum_within_tolerance(6, 0));
        assert!(!stage_sum_within_tolerance(600, 0));
    }

    #[test]
    fn requests_missing_stage_fields_are_not_staged() {
        let lines = [
            "{\"ev\":\"exit\",\"span\":4,\"name\":\"serve.request\",\"thread\":1,\
             \"t_ns\":10,\"dur_ns\":5000}"
                .to_string(),
        ];
        let report = analyze_lines(lines.iter().map(String::as_str), 5);
        assert_eq!(report.staged_requests, 0);
        assert_eq!(report.span_stats.len(), 1);
        assert_eq!(report.span_stats[0].count, 1);
        assert_eq!(report.stage_coverage_frac(), 1.0);
    }
}
