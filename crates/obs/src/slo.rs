//! Declarative SLOs evaluated as multi-window burn-rate alarms over
//! [`Registry`] snapshots.
//!
//! An [`SloSpec`] names an objective over registered metrics — a
//! latency histogram with a threshold, or a ratio of two counters —
//! together with a target good-fraction and a set of
//! [`BurnWindow`]s. The [`SloEngine`] is fed timestamped registry
//! snapshots via [`SloEngine::observe`] and answers
//! [`SloEngine::evaluate`] with per-spec alarm states.
//!
//! **Burn rate** follows the SRE-workbook convention: with an error
//! budget of `1 - target`, a window's burn rate is
//! `bad_fraction / (1 - target)` — `1.0` means the budget is being
//! consumed exactly as fast as allowed, `10.0` means ten times too
//! fast. An alarm fires only when **every** configured window exceeds
//! its `max_burn_rate` (the classic multi-window AND: the long window
//! proves the problem is real, the short window proves it is still
//! happening). A window that is not yet covered by two snapshots spaced
//! at least the window apart can never fire — alarms stay silent during
//! warm-up instead of guessing.
//!
//! All timestamps are injected by the caller as [`Duration`]s from an
//! arbitrary epoch, so tests are fully deterministic: no wall clock is
//! read anywhere in this module.

use std::collections::VecDeque;
use std::time::Duration;

use crate::metrics::{Histogram, MetricReading, Registry};

/// What an SLO measures, in terms of metrics registered in a
/// [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Fraction of histogram samples whose (power-of-two quantized)
    /// latency exceeds `threshold_us`: a sample is *bad* when its
    /// bucket's upper bound is greater than the threshold. With
    /// `target = 0.99` this is a p99-latency SLO.
    LatencyAbove {
        /// Name of a registered histogram (microsecond samples).
        histogram: String,
        /// Latency threshold in microseconds.
        threshold_us: u64,
    },
    /// Ratio of two registered counters (`numerator / denominator`),
    /// e.g. errors over requests, or sentinel flags over requests.
    EventRatio {
        /// Counter counting bad events.
        numerator: String,
        /// Counter counting all events.
        denominator: String,
    },
}

/// One alarm window: the look-back period and the burn rate above
/// which it votes to fire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// Look-back period.
    pub window: Duration,
    /// Burn rate (error-budget consumption speed, 1.0 = exactly on
    /// budget) above which this window votes to fire.
    pub max_burn_rate: f64,
}

/// A declarative SLO: an objective, a target good-fraction, and the
/// multi-window burn-rate alarm policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Alarm name, e.g. `request_p99_latency`. Also used to name the
    /// exported `slo_alarm_<name>` gauge.
    pub name: String,
    /// What to measure.
    pub objective: Objective,
    /// Target good-fraction in `[0, 1)`, e.g. `0.99` → a 1% error
    /// budget.
    pub target: f64,
    /// Alarm windows; **all** must exceed their burn rate to fire.
    pub windows: Vec<BurnWindow>,
}

/// Cumulative (bad, total) pair for one objective at one instant.
#[derive(Debug, Clone, Copy)]
struct Sample {
    bad: u64,
    total: u64,
}

/// One timestamped registry snapshot: a [`Sample`] per spec.
#[derive(Debug, Clone)]
struct Snapshot {
    at: Duration,
    samples: Vec<Sample>,
}

/// The state of one window at evaluation time.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStatus {
    /// The configured look-back period.
    pub window: Duration,
    /// The configured firing threshold.
    pub max_burn_rate: f64,
    /// Whether two snapshots at least `window` apart exist; an
    /// uncovered window never votes to fire.
    pub covered: bool,
    /// Bad events in the window (delta between snapshots).
    pub bad: u64,
    /// Total events in the window.
    pub total: u64,
    /// Measured burn rate (`bad_frac / error_budget`); 0 when the
    /// window saw no events or is uncovered.
    pub burn_rate: f64,
}

/// The state of one SLO at evaluation time.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// Whether the alarm is currently firing (all windows covered and
    /// over their burn rates).
    pub firing: bool,
    /// Whether `firing` changed relative to the previous evaluation —
    /// use to emit edge-triggered events instead of spamming.
    pub changed: bool,
    /// Per-window detail, in spec order.
    pub windows: Vec<WindowStatus>,
}

/// Evaluates a set of [`SloSpec`]s over timestamped registry
/// snapshots.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    snapshots: VecDeque<Snapshot>,
    /// Longest configured window, for snapshot retention.
    max_window: Duration,
    /// Previous firing state per spec, for transition detection.
    firing: Vec<bool>,
}

impl SloEngine {
    /// Creates an engine over `specs`. Specs with `target >= 1` are
    /// clamped to an epsilon error budget rather than rejected, so a
    /// misconfigured spec alarm-storms instead of dividing by zero.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let max_window = specs
            .iter()
            .flat_map(|s| s.windows.iter())
            .map(|w| w.window)
            .max()
            .unwrap_or(Duration::ZERO);
        let firing = vec![false; specs.len()];
        SloEngine {
            specs,
            snapshots: VecDeque::new(),
            max_window,
            firing,
        }
    }

    /// The configured specs, in evaluation order.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Takes a snapshot of every objective's cumulative counts at
    /// caller-supplied instant `at` (monotone across calls; a
    /// non-monotone timestamp is ignored rather than corrupting the
    /// history).
    pub fn observe(&mut self, at: Duration, registry: &Registry) {
        if let Some(last) = self.snapshots.back() {
            if at < last.at {
                return;
            }
        }
        let samples = self
            .specs
            .iter()
            .map(|spec| sample_objective(&spec.objective, registry))
            .collect();
        self.snapshots.push_back(Snapshot { at, samples });
        // Retain one snapshot at or beyond the longest window boundary
        // so that window stays covered; drop everything older.
        let cutoff = at.saturating_sub(self.max_window);
        while self.snapshots.len() >= 2 && self.snapshots[1].at <= cutoff {
            self.snapshots.pop_front();
        }
    }

    /// Evaluates every spec against the snapshot history as of `at`
    /// and updates the internal firing state (so `changed` flags
    /// transitions).
    pub fn evaluate(&mut self, at: Duration) -> Vec<SloStatus> {
        let mut out = Vec::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            let budget = (1.0 - spec.target).max(1e-9);
            let latest = self.snapshots.back();
            let mut windows = Vec::with_capacity(spec.windows.len());
            let mut all_fire = !spec.windows.is_empty();
            for bw in &spec.windows {
                // Window baseline: the newest snapshot taken at or
                // before the window start. `checked_sub` keeps windows
                // uncovered until the clock itself has run at least one
                // window length — a t=0 snapshot is not 60s of history.
                let base = at
                    .checked_sub(bw.window)
                    .and_then(|start| self.snapshots.iter().rev().find(|s| s.at <= start));
                let (covered, bad, total) = match (base, latest) {
                    (Some(b), Some(l)) => {
                        let bad = l.samples[i].bad.saturating_sub(b.samples[i].bad);
                        let total = l.samples[i].total.saturating_sub(b.samples[i].total);
                        (true, bad, total)
                    }
                    _ => (false, 0, 0),
                };
                let bad_frac = if total == 0 {
                    0.0
                } else {
                    bad as f64 / total as f64
                };
                let burn_rate = if covered { bad_frac / budget } else { 0.0 };
                if !(covered && burn_rate > bw.max_burn_rate) {
                    all_fire = false;
                }
                windows.push(WindowStatus {
                    window: bw.window,
                    max_burn_rate: bw.max_burn_rate,
                    covered,
                    bad,
                    total,
                    burn_rate,
                });
            }
            let changed = all_fire != self.firing[i];
            self.firing[i] = all_fire;
            out.push(SloStatus {
                name: spec.name.clone(),
                firing: all_fire,
                changed,
                windows,
            });
        }
        out
    }
}

/// Reads one objective's cumulative (bad, total) counts from the
/// registry. Missing or kind-mismatched metrics read as all-zero (the
/// alarm stays silent rather than panicking inside a serving loop).
fn sample_objective(objective: &Objective, registry: &Registry) -> Sample {
    match objective {
        Objective::LatencyAbove {
            histogram,
            threshold_us,
        } => match registry.read(histogram) {
            Some(MetricReading::Histogram { buckets, count, .. }) => {
                let bad = buckets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| Histogram::bucket_upper(*i) > *threshold_us)
                    .map(|(_, c)| *c)
                    .sum();
                Sample { bad, total: count }
            }
            _ => Sample { bad: 0, total: 0 },
        },
        Objective::EventRatio {
            numerator,
            denominator,
        } => {
            let read_counter = |name: &str| match registry.read(name) {
                Some(MetricReading::Counter(v)) => v,
                _ => 0,
            };
            Sample {
                bad: read_counter(numerator),
                total: read_counter(denominator),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    fn p99_spec(threshold_us: u64) -> SloSpec {
        SloSpec {
            name: "request_p99_latency".into(),
            objective: Objective::LatencyAbove {
                histogram: "latency_us".into(),
                threshold_us,
            },
            target: 0.99,
            windows: vec![
                BurnWindow {
                    window: secs(60),
                    max_burn_rate: 10.0,
                },
                BurnWindow {
                    window: secs(300),
                    max_burn_rate: 10.0,
                },
            ],
        }
    }

    fn error_spec() -> SloSpec {
        SloSpec {
            name: "error_rate".into(),
            objective: Objective::EventRatio {
                numerator: "errors_total".into(),
                denominator: "requests_total".into(),
            },
            target: 0.999,
            windows: vec![BurnWindow {
                window: secs(60),
                max_burn_rate: 5.0,
            }],
        }
    }

    #[test]
    fn uncovered_windows_never_fire() {
        let r = Registry::new();
        let h = r.histogram("latency_us", "Latency.");
        for _ in 0..100 {
            h.record(1_000_000); // every sample terrible
        }
        let mut engine = SloEngine::new(vec![p99_spec(10_000)]);
        engine.observe(secs(0), &r);
        // Only 10s of history against 60s/300s windows: silent.
        engine.observe(secs(10), &r);
        let st = &engine.evaluate(secs(10))[0];
        assert!(!st.firing);
        assert!(st.windows.iter().all(|w| !w.covered));
    }

    #[test]
    fn sustained_bad_latency_fires_and_recovery_clears() {
        let r = Registry::new();
        let h = r.histogram("latency_us", "Latency.");
        let mut engine = SloEngine::new(vec![p99_spec(10_000)]);
        engine.observe(secs(0), &r);
        // 400s of all-bad traffic, snapshotted every 100s.
        for t in 1..=4u64 {
            for _ in 0..100 {
                h.record(1_000_000);
            }
            engine.observe(secs(t * 100), &r);
        }
        let st = engine.evaluate(secs(400)).remove(0);
        assert!(st.firing, "{st:?}");
        assert!(st.changed, "first firing evaluation is a transition");
        assert!(st.windows.iter().all(|w| w.covered && w.burn_rate > 10.0));
        // Traffic turns healthy: the short window clears first, and the
        // multi-window AND un-fires the alarm.
        for t in 5..=10u64 {
            for _ in 0..1000 {
                h.record(100); // fast
            }
            engine.observe(secs(t * 100), &r);
        }
        let st = engine.evaluate(secs(1000)).remove(0);
        assert!(!st.firing, "{st:?}");
        assert!(st.changed, "recovery is a transition");
        let st = engine.evaluate(secs(1000)).remove(0);
        assert!(!st.changed, "steady state is not a transition");
    }

    #[test]
    fn short_blip_does_not_fire_the_long_window() {
        let r = Registry::new();
        let h = r.histogram("latency_us", "Latency.");
        let mut engine = SloEngine::new(vec![p99_spec(10_000)]);
        // 300s of healthy traffic to cover both windows.
        engine.observe(secs(0), &r);
        for t in 1..=6u64 {
            for _ in 0..2000 {
                h.record(100);
            }
            engine.observe(secs(t * 50), &r);
        }
        // A 50s blip of bad samples: the 60s window burns hot, but the
        // 300s window is diluted by the healthy majority.
        for _ in 0..300 {
            h.record(1_000_000);
        }
        engine.observe(secs(350), &r);
        let st = engine.evaluate(secs(350)).remove(0);
        assert!(!st.firing, "{st:?}");
        assert!(st.windows[0].burn_rate > 10.0, "{st:?}");
        assert!(st.windows[1].burn_rate <= 10.0, "{st:?}");
    }

    #[test]
    fn event_ratio_objective_fires_on_error_burst() {
        let r = Registry::new();
        let errors = r.counter("errors_total", "Errors.");
        let requests = r.counter("requests_total", "Requests.");
        let mut engine = SloEngine::new(vec![error_spec()]);
        engine.observe(secs(0), &r);
        requests.add(1000);
        engine.observe(secs(60), &r);
        let st = engine.evaluate(secs(60)).remove(0);
        assert!(!st.firing, "no errors: {st:?}");
        // 5% errors against a 0.1% budget: burn rate 50 >> 5.
        requests.add(1000);
        errors.add(50);
        engine.observe(secs(120), &r);
        let st = engine.evaluate(secs(120)).remove(0);
        assert!(st.firing, "{st:?}");
        assert!((st.windows[0].burn_rate - 50.0).abs() < 1.0, "{st:?}");
    }

    #[test]
    fn missing_metrics_read_as_silent() {
        let r = Registry::new();
        let mut engine = SloEngine::new(vec![p99_spec(10_000), error_spec()]);
        engine.observe(secs(0), &r);
        engine.observe(secs(1000), &r);
        let statuses = engine.evaluate(secs(1000));
        assert!(statuses.iter().all(|s| !s.firing), "{statuses:?}");
    }

    #[test]
    fn snapshot_history_is_pruned_to_the_longest_window() {
        let r = Registry::new();
        r.histogram("latency_us", "Latency.");
        let mut engine = SloEngine::new(vec![p99_spec(10_000)]);
        for t in 0..100u64 {
            engine.observe(secs(t * 10), &r);
        }
        // Longest window is 300s @ 10s cadence → ~31 snapshots suffice.
        assert!(
            engine.snapshots.len() <= 33,
            "history grew unboundedly: {}",
            engine.snapshots.len()
        );
        // The 300s window is still covered after pruning.
        let st = engine.evaluate(secs(990)).remove(0);
        assert!(st.windows.iter().all(|w| w.covered), "{st:?}");
    }

    #[test]
    fn non_monotone_observations_are_ignored() {
        let r = Registry::new();
        let h = r.histogram("latency_us", "Latency.");
        let mut engine = SloEngine::new(vec![p99_spec(10_000)]);
        engine.observe(secs(100), &r);
        h.record(1_000_000);
        engine.observe(secs(50), &r); // ignored
        assert_eq!(engine.snapshots.len(), 1);
    }

    #[test]
    fn latency_threshold_respects_bucket_quantization() {
        let r = Registry::new();
        let h = r.histogram("latency_us", "Latency.");
        // 900us lands in bucket [512, 1024): upper bound 1024.
        h.record(900);
        let spec = p99_spec(1024); // threshold == upper bound → good
        let s = sample_objective(&spec.objective, &r);
        assert_eq!((s.bad, s.total), (0, 1));
        let spec = p99_spec(1023); // upper bound exceeds → bad
        let s = sample_objective(&spec.objective, &r);
        assert_eq!((s.bad, s.total), (1, 1));
    }
}
