//! Span-based structured tracing with newline-delimited JSON output.
//!
//! The tracer is built around one global, pluggable [`Sink`]. By default
//! the sink is [`Sink::Disabled`] and every instrumentation point costs a
//! single relaxed atomic load — cheap enough for per-row attack loops and
//! per-request serving paths. When a sink is installed, [`Span::enter`]
//! and [`event`] write one JSON object per line:
//!
//! ```text
//! {"ev":"enter","span":3,"parent":2,"name":"jsma.craft","thread":1,"t_ns":81250}
//! {"ev":"event","span":3,"name":"jsma.progress","thread":1,"t_ns":90010,"fields":{"iter":4}}
//! {"ev":"exit","span":3,"name":"jsma.craft","thread":1,"t_ns":99604,"dur_ns":18354,"fields":{"evaded":true}}
//! ```
//!
//! * `span` ids are process-unique and monotonically increasing;
//! * `parent` is the innermost open span *on the same thread* (0 = root);
//! * `thread` is a small per-thread ordinal (not the OS thread id);
//! * `t_ns` is monotonic nanoseconds since the first trace call of the
//!   process — timestamps never go backwards.
//!
//! Tracing never changes results: instrumented code must not branch on
//! the tracer beyond `if trace::enabled()` guards around *extra*
//! diagnostics (e.g. gradient norms) that are otherwise unobservable.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Fast-path gate: one relaxed load per instrumentation point.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Process-unique span id allocator (0 is reserved for "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Small per-thread ordinals for the `thread` field.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
/// The installed sink.
static WRITER: Mutex<Writer> = Mutex::new(Writer::Disabled);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide monotonic epoch: the instant of the first trace call.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// Mints a process-unique, monotonically increasing id from the same
/// allocator that numbers spans. Used for wire-level trace ids: a
/// client mints one `trace_id` per logical request (and one id per
/// attempt) so client- and server-side spans can be joined in a single
/// trace file. Works whether or not tracing is enabled, and never
/// returns 0 (reserved for "no id").
pub fn mint_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Where trace lines go. Install with [`install`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sink {
    /// Tracing off (the default): instrumentation points cost one
    /// relaxed atomic load and emit nothing.
    Disabled,
    /// Tracing on, output discarded after formatting. Used to measure
    /// tracer overhead and as a safe stand-in when no output is wanted.
    Null,
    /// One JSON line per record to standard error.
    Stderr,
    /// One JSON line per record appended to this file (created or
    /// truncated at install time, buffered; call [`flush`] at exit).
    File(PathBuf),
}

enum Writer {
    Disabled,
    Null,
    Stderr,
    File(BufWriter<File>),
    Memory(Arc<Mutex<Vec<String>>>),
}

impl Writer {
    fn write_line(&mut self, line: &str) {
        match self {
            Writer::Disabled | Writer::Null => {}
            Writer::Stderr => {
                let mut err = io::stderr().lock();
                let _ = err.write_all(line.as_bytes());
                let _ = err.write_all(b"\n");
            }
            Writer::File(w) => {
                let _ = w.write_all(line.as_bytes());
                let _ = w.write_all(b"\n");
            }
            Writer::Memory(buf) => {
                if let Ok(mut lines) = buf.lock() {
                    lines.push(line.to_string());
                }
            }
        }
    }

    fn flush(&mut self) {
        if let Writer::File(w) = self {
            let _ = w.flush();
        }
    }
}

/// Installs a sink, replacing (and flushing) the previous one.
///
/// # Errors
///
/// Returns the I/O error if a [`Sink::File`] cannot be created.
pub fn install(sink: Sink) -> io::Result<()> {
    let writer = match sink {
        Sink::Disabled => Writer::Disabled,
        Sink::Null => Writer::Null,
        Sink::Stderr => Writer::Stderr,
        Sink::File(path) => Writer::File(BufWriter::new(File::create(path)?)),
    };
    replace_writer(writer);
    Ok(())
}

/// Installs an in-memory sink (for tests) and returns a handle to the
/// captured lines.
pub fn install_memory_sink() -> MemoryHandle {
    let buf = Arc::new(Mutex::new(Vec::new()));
    replace_writer(Writer::Memory(Arc::clone(&buf)));
    MemoryHandle { buf }
}

fn replace_writer(writer: Writer) {
    let enabled = !matches!(writer, Writer::Disabled);
    if let Ok(mut w) = WRITER.lock() {
        w.flush();
        *w = writer;
    }
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether a sink is installed. Use to gate *extra* diagnostics whose
/// computation would otherwise be wasted (never to change results).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flushes buffered output (relevant for [`Sink::File`]). Call before
/// process exit.
pub fn flush() {
    if let Ok(mut w) = WRITER.lock() {
        w.flush();
    }
}

/// Handle to the lines captured by [`install_memory_sink`].
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    buf: Arc<Mutex<Vec<String>>>,
}

impl MemoryHandle {
    /// A copy of the captured lines, in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.buf.lock().map(|l| l.clone()).unwrap_or_default()
    }

    /// Drops all captured lines.
    pub fn clear(&self) {
        if let Ok(mut l) = self.buf.lock() {
            l.clear();
        }
    }
}

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values serialize as `null`.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on output).
    Str(String),
}

macro_rules! value_from {
    ($($t:ty => $v:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$v(v as $conv) }
        })*
    };
}
value_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn push_value(buf: &mut String, v: &Value) {
    match v {
        Value::U64(n) => buf.push_str(&n.to_string()),
        Value::I64(n) => buf.push_str(&n.to_string()),
        Value::F64(f) if f.is_finite() => buf.push_str(&format!("{f}")),
        Value::F64(_) => buf.push_str("null"),
        Value::Bool(b) => buf.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => push_json_str(buf, s),
    }
}

fn push_fields(buf: &mut String, fields: &[(&'static str, Value)]) {
    if fields.is_empty() {
        return;
    }
    buf.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        push_json_str(buf, k);
        buf.push(':');
        push_value(buf, v);
    }
    buf.push('}');
}

fn emit(line: &str) {
    if let Ok(mut w) = WRITER.lock() {
        w.write_line(line);
    }
}

/// Emits a point event attached to the innermost open span on this
/// thread. No-op when tracing is disabled.
pub fn event(name: &str, fields: &[(&'static str, Value)]) {
    if !enabled() {
        return;
    }
    let span = SPAN_STACK.with(|s| s.borrow().last().copied()).unwrap_or(0);
    let mut line = String::with_capacity(96);
    line.push_str("{\"ev\":\"event\",\"span\":");
    line.push_str(&span.to_string());
    line.push_str(",\"name\":");
    push_json_str(&mut line, name);
    line.push_str(",\"thread\":");
    line.push_str(&thread_ordinal().to_string());
    line.push_str(",\"t_ns\":");
    line.push_str(&now_ns().to_string());
    push_fields(&mut line, fields);
    line.push('}');
    emit(&line);
}

/// An RAII span: [`Span::enter`] emits an `enter` record, dropping the
/// guard emits the matching `exit` with the duration and any recorded
/// fields. When tracing is disabled the guard is inert.
#[derive(Debug)]
pub struct Span {
    active: bool,
    id: u64,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// Opens a span. Nesting is tracked per thread: the parent is the
    /// innermost span currently open on the calling thread.
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span {
                active: false,
                id: 0,
                name,
                start_ns: 0,
                fields: Vec::new(),
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        });
        let start_ns = now_ns();
        let mut line = String::with_capacity(96);
        line.push_str("{\"ev\":\"enter\",\"span\":");
        line.push_str(&id.to_string());
        line.push_str(",\"parent\":");
        line.push_str(&parent.to_string());
        line.push_str(",\"name\":");
        push_json_str(&mut line, name);
        line.push_str(",\"thread\":");
        line.push_str(&thread_ordinal().to_string());
        line.push_str(",\"t_ns\":");
        line.push_str(&start_ns.to_string());
        line.push('}');
        emit(&line);
        Span {
            active: true,
            id,
            name,
            start_ns,
            fields: Vec::new(),
        }
    }

    /// Attaches a key/value field, emitted with the `exit` record.
    /// No-op on an inert span.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.active {
            self.fields.push((key, value.into()));
        }
    }

    /// Whether this span is live (a sink was installed when it opened).
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let t = now_ns();
        let mut line = String::with_capacity(128);
        line.push_str("{\"ev\":\"exit\",\"span\":");
        line.push_str(&self.id.to_string());
        line.push_str(",\"name\":");
        push_json_str(&mut line, self.name);
        line.push_str(",\"thread\":");
        line.push_str(&thread_ordinal().to_string());
        line.push_str(",\"t_ns\":");
        line.push_str(&t.to_string());
        line.push_str(",\"dur_ns\":");
        line.push_str(&t.saturating_sub(self.start_ns).to_string());
        push_fields(&mut line, &self.fields);
        line.push('}');
        emit(&line);
        // A span dropped during a panic unwind is usually the last
        // chance to get its record out before the thread (or the
        // surrounding catch_unwind recovery) discards state — flush the
        // sink so panic-isolated scorer rows keep their trace.
        if std::thread::panicking() {
            flush();
        }
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_emits_nothing_and_spans_are_inert() {
        let _guard = test_lock();
        install(Sink::Disabled).expect("install");
        let mut span = Span::enter("quiet");
        span.record("x", 1u64);
        assert!(!span.is_active());
        drop(span);
        event("ignored", &[("k", 1u64.into())]);
        // Installing a memory sink afterwards captures nothing from the past.
        let captured = install_memory_sink();
        assert!(captured.lines().is_empty());
        install(Sink::Disabled).expect("install");
    }

    #[test]
    fn spans_nest_and_balance() {
        let _guard = test_lock();
        let captured = install_memory_sink();
        {
            let mut outer = Span::enter("outer");
            outer.record("rows", 3u64);
            {
                let _inner = Span::enter("inner");
                event("tick", &[("i", 0u64.into())]);
            }
        }
        install(Sink::Disabled).expect("install");
        let lines = captured.lines();
        assert_eq!(lines.len(), 5, "{lines:#?}");
        assert!(lines[0].contains("\"ev\":\"enter\"") && lines[0].contains("\"name\":\"outer\""));
        assert!(lines[1].contains("\"name\":\"inner\""));
        assert!(lines[2].contains("\"ev\":\"event\"") && lines[2].contains("\"name\":\"tick\""));
        assert!(lines[3].contains("\"ev\":\"exit\"") && lines[3].contains("\"name\":\"inner\""));
        assert!(
            lines[4].contains("\"ev\":\"exit\"") && lines[4].contains("\"fields\":{\"rows\":3}")
        );
        // The inner span's parent is the outer span's id.
        let outer_id: u64 = extract(&lines[0], "\"span\":");
        let inner_parent: u64 = extract(&lines[1], "\"parent\":");
        assert_eq!(outer_id, inner_parent);
        // The event is attached to the inner span.
        let inner_id: u64 = extract(&lines[1], "\"span\":");
        assert_eq!(extract::<u64>(&lines[2], "\"span\":"), inner_id);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let _guard = test_lock();
        let captured = install_memory_sink();
        for _ in 0..10 {
            let _span = Span::enter("tick");
        }
        install(Sink::Disabled).expect("install");
        let ts: Vec<u64> = captured
            .lines()
            .iter()
            .map(|l| extract(l, "\"t_ns\":"))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn strings_are_json_escaped() {
        let _guard = test_lock();
        let captured = install_memory_sink();
        event("escape", &[("msg", "a\"b\\c\nd".into())]);
        install(Sink::Disabled).expect("install");
        let line = captured.lines().remove(0);
        assert!(line.contains(r#""msg":"a\"b\\c\nd""#), "{line}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let _guard = test_lock();
        let captured = install_memory_sink();
        event("nan", &[("loss", f64::NAN.into()), ("ok", 0.5f64.into())]);
        install(Sink::Disabled).expect("install");
        let line = captured.lines().remove(0);
        assert!(line.contains("\"loss\":null"), "{line}");
        assert!(line.contains("\"ok\":0.5"), "{line}");
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let _guard = test_lock();
        let path = std::env::temp_dir().join("maleva-obs-trace-test.jsonl");
        install(Sink::File(path.clone())).expect("install file sink");
        {
            let mut span = Span::enter("file.span");
            span.record("n", 7u64);
        }
        install(Sink::Disabled).expect("install");
        let text = std::fs::read_to_string(&path).expect("read trace");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"n\":7"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let _guard = test_lock();
        let a = mint_id();
        let b = mint_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert!(b > a, "ids are monotone: {a} then {b}");
        // Minting works with tracing fully disabled.
        install(Sink::Disabled).expect("install");
        assert_ne!(mint_id(), 0);
    }

    #[test]
    fn panicking_span_drop_flushes_the_file_sink() {
        let _guard = test_lock();
        let path = std::env::temp_dir().join("maleva-obs-panic-flush-test.jsonl");
        install(Sink::File(path.clone())).expect("install file sink");
        let result = std::thread::spawn(|| {
            let mut span = Span::enter("doomed.row");
            span.record("row", 3u64);
            panic!("scorer row blew up");
        })
        .join();
        assert!(result.is_err(), "the thread must have panicked");
        // Read the file *without* reinstalling the sink: the unwind-time
        // flush from Span::drop must already have pushed the buffered
        // records to disk.
        let text = std::fs::read_to_string(&path).expect("read trace");
        assert!(
            text.contains("\"ev\":\"exit\"") && text.contains("doomed.row"),
            "exit record missing after panic: {text:?}"
        );
        assert!(text.contains("\"row\":3"), "{text:?}");
        install(Sink::Disabled).expect("install");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn null_sink_accepts_events_silently() {
        let _guard = test_lock();
        install(Sink::Null).expect("install");
        assert!(enabled());
        let mut span = Span::enter("null.span");
        span.record("x", true);
        drop(span);
        install(Sink::Disabled).expect("install");
        assert!(!enabled());
    }

    fn extract<T: std::str::FromStr>(line: &str, key: &str) -> T
    where
        T::Err: std::fmt::Debug,
    {
        let start = line.find(key).expect("key present") + key.len();
        let rest = &line[start..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().expect("numeric field")
    }
}
