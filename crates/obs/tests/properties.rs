//! Property tests for the tracer: for arbitrary multi-threaded span
//! interleavings, the emitted JSONL must be well-formed and the span
//! stream must be balanced — every `enter` has a matching `exit`, and
//! nesting forms a valid per-thread tree.

use proptest::prelude::*;
use serde::Content;

use maleva_obs::trace::{self, Span};

/// Newtype deserializing into the raw `Content` tree so arbitrary
/// JSON objects can be inspected.
struct JsonValue(Content);

impl<'de> serde::Deserialize<'de> for JsonValue {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.content().map(JsonValue)
    }
}

fn get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(map: &[(String, Content)], key: &str) -> Option<u64> {
    match get(map, key)? {
        Content::U64(n) => Some(*n),
        Content::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn get_str<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a str> {
    match get(map, key)? {
        Content::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct ParsedRecord {
    ev: String,
    span: u64,
    parent: Option<u64>,
    thread: u64,
    t_ns: u64,
}

fn parse_record(line: &str) -> ParsedRecord {
    let JsonValue(content) =
        serde_json::from_str(line).unwrap_or_else(|e| panic!("invalid JSON {line:?}: {e:?}"));
    let Content::Map(map) = content else {
        panic!("trace line is not an object: {line:?}");
    };
    let ev = get_str(&map, "ev").expect("ev field").to_string();
    let span = get_u64(&map, "span").expect("span field");
    let parent = get_u64(&map, "parent");
    let thread = get_u64(&map, "thread").expect("thread field");
    let t_ns = get_u64(&map, "t_ns").expect("t_ns field");
    assert!(get_str(&map, "name").is_some(), "name field in {line:?}");
    if ev == "enter" {
        assert!(parent.is_some(), "enter without parent: {line:?}");
    }
    if ev == "exit" {
        assert!(
            get_u64(&map, "dur_ns").is_some(),
            "exit without dur_ns: {line:?}"
        );
    }
    ParsedRecord {
        ev,
        span,
        parent,
        thread,
        t_ns,
    }
}

/// Runs one thread's workload: a sequence of (depth, events) pairs,
/// each opening a nested span chain of that depth with point events at
/// the innermost level.
fn run_program(program: &[(usize, usize)]) {
    fn nest(depth: usize, events: usize) {
        let mut span = Span::enter("prop.span");
        span.record("depth", depth as u64);
        if depth > 1 {
            nest(depth - 1, events);
        } else {
            for i in 0..events {
                trace::event("prop.event", &[("i", (i as u64).into())]);
            }
        }
    }
    for &(depth, events) in program {
        nest(depth, events);
    }
}

/// Serializes tests in this binary that touch the global sink.
fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn check_stream(lines: &[String]) {
    use std::collections::{HashMap, HashSet};
    let records: Vec<ParsedRecord> = lines.iter().map(|l| parse_record(l)).collect();
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut seen_span_ids: HashSet<u64> = HashSet::new();
    let mut last_t: HashMap<u64, u64> = HashMap::new();
    for rec in &records {
        // Per-thread timestamps never go backwards (emission is in
        // program order within a thread).
        let prev = last_t.entry(rec.thread).or_insert(0);
        assert!(
            rec.t_ns >= *prev,
            "time went backwards on thread {}",
            rec.thread
        );
        *prev = rec.t_ns;
        let stack = stacks.entry(rec.thread).or_default();
        match rec.ev.as_str() {
            "enter" => {
                assert!(
                    seen_span_ids.insert(rec.span),
                    "duplicate span id {}",
                    rec.span
                );
                // The recorded parent is the innermost open span on
                // the same thread (0 at the root) — a valid tree.
                let expected_parent = stack.last().copied().unwrap_or(0);
                assert_eq!(rec.parent, Some(expected_parent), "bad parent for {rec:?}");
                stack.push(rec.span);
            }
            "exit" => {
                let top = stack
                    .pop()
                    .unwrap_or_else(|| panic!("exit without matching enter: {rec:?}"));
                assert_eq!(top, rec.span, "unbalanced exit: {rec:?}");
            }
            "event" => {
                // Events attach to the innermost open span (0 = root).
                let current = stack.last().copied().unwrap_or(0);
                assert_eq!(rec.span, current, "event outside its span: {rec:?}");
            }
            other => panic!("unknown ev kind {other:?}"),
        }
    }
    for (thread, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "unclosed spans on thread {thread}: {stack:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multithreaded_traces_are_wellformed_and_balanced(
        programs in prop::collection::vec(
            prop::collection::vec((1usize..=4, 0usize..=3), 1..6),
            1..4,
        )
    ) {
        let _guard = sink_lock();
        let captured = trace::install_memory_sink();
        std::thread::scope(|scope| {
            for program in &programs {
                scope.spawn(|| run_program(program));
            }
        });
        trace::install(trace::Sink::Disabled).expect("disable tracing");
        let lines = captured.lines();
        let expected_spans: usize = programs
            .iter()
            .flat_map(|p| p.iter())
            .map(|&(depth, _)| depth)
            .sum();
        let expected_events: usize = programs
            .iter()
            .flat_map(|p| p.iter())
            .map(|&(_, events)| events)
            .sum();
        prop_assert_eq!(lines.len(), 2 * expected_spans + expected_events);
        check_stream(&lines);
    }
}

#[test]
fn single_thread_deep_nesting_balances() {
    let _guard = sink_lock();
    let captured = trace::install_memory_sink();
    run_program(&[(4, 2), (1, 0), (3, 1)]);
    trace::install(trace::Sink::Disabled).expect("disable tracing");
    let lines = captured.lines();
    assert_eq!(lines.len(), 2 * (4 + 1 + 3) + 3);
    check_stream(&lines);
}
