//! The micro-batching core: job types and the pure batched scorer.
//!
//! Acceptor threads enqueue [`ScoreJob`]s into a bounded channel; the
//! scorer thread drains up to `max_batch` jobs (or until the batch
//! deadline) and runs **one** batched forward pass via
//! [`score_rows`]. The contract — pinned by this crate's proptests —
//! is that batched scores are bit-identical to scoring each row alone,
//! so batching is purely a throughput optimization, never a semantic
//! one.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use maleva_nn::{Network, NnError};

/// One pending scoring request travelling from a connection thread to
/// the scorer thread.
pub struct ScoreJob {
    /// Transformed feature row (already through the feature pipeline).
    pub features: Vec<f64>,
    /// Quantized cache key for post-scoring insertion.
    pub cache_key: Vec<i64>,
    /// Where the scorer sends the result.
    pub reply: mpsc::Sender<ScoredReply>,
}

/// The scorer's answer to one [`ScoreJob`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredReply {
    /// Malware confidence in `[0, 1]`.
    pub score: f64,
    /// Number of rows in the batch this job was scored with.
    pub batch_size: usize,
}

/// Scores `rows` (transformed features) in one batched forward pass,
/// returning the malware confidence (class-1 probability) per row.
///
/// Bit-identical to calling the network on each row individually — see
/// [`maleva_nn::Network::predict_proba_rows`].
///
/// # Errors
///
/// Returns [`NnError::InputShape`] if `rows` is empty or any row's
/// width differs from the network's input dimensionality.
pub fn score_rows(network: &Network, rows: &[Vec<f64>]) -> Result<Vec<f64>, NnError> {
    let proba = network.predict_proba_rows(rows)?;
    Ok((0..proba.rows()).map(|r| proba.get(r, 1)).collect())
}

/// Reference implementation: scores each row with its own forward pass.
/// Exists so tests can assert the batched path bit-identically matches.
///
/// # Errors
///
/// Returns [`NnError::InputShape`] on row-width mismatch.
pub fn score_rows_sequential(network: &Network, rows: &[Vec<f64>]) -> Result<Vec<f64>, NnError> {
    rows.iter()
        .map(|row| {
            let proba = network.predict_proba_rows(std::slice::from_ref(row))?;
            Ok(proba.get(0, 1))
        })
        .collect()
}

/// Drains one micro-batch from `rx`: blocks for the first job, then
/// keeps collecting until `max_batch` jobs are gathered or
/// `batch_timeout` elapses since the first arrival. Returns `None` once
/// the channel is disconnected and empty (drain complete).
pub fn collect_batch(
    rx: &mpsc::Receiver<ScoreJob>,
    max_batch: usize,
    batch_timeout: Duration,
) -> Option<Vec<ScoreJob>> {
    let first = rx.recv().ok()?;
    let mut jobs = vec![first];
    let deadline = Instant::now() + batch_timeout;
    while jobs.len() < max_batch {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            // Deadline passed: take whatever is already queued, but do
            // not wait for stragglers.
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        } else {
            match rx.recv_timeout(remaining) {
                Ok(job) => jobs.push(job),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    Some(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maleva_nn::{Activation, NetworkBuilder};

    fn net() -> Network {
        NetworkBuilder::new(4)
            .layer(6, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn batched_equals_sequential_bitwise() {
        let net = net();
        let rows: Vec<Vec<f64>> = (0..13)
            .map(|i| {
                (0..4)
                    .map(|j| ((i * 7 + j) as f64 * 0.13).sin().abs())
                    .collect()
            })
            .collect();
        let batched = score_rows(&net, &rows).unwrap();
        let sequential = score_rows_sequential(&net, &rows).unwrap();
        assert_eq!(batched.len(), 13);
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn collect_batch_honors_max_batch() {
        let (tx, rx) = mpsc::sync_channel::<ScoreJob>(16);
        let (reply, _keep) = mpsc::channel();
        for _ in 0..5 {
            tx.try_send(ScoreJob {
                features: vec![0.0; 4],
                cache_key: vec![],
                reply: reply.clone(),
            })
            .unwrap();
        }
        let batch = collect_batch(&rx, 3, Duration::from_millis(50)).unwrap();
        assert_eq!(batch.len(), 3);
        let batch = collect_batch(&rx, 3, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn collect_batch_returns_none_when_disconnected() {
        let (tx, rx) = mpsc::sync_channel::<ScoreJob>(4);
        drop(tx);
        assert!(collect_batch(&rx, 8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn collect_batch_drains_leftovers_after_disconnect() {
        let (tx, rx) = mpsc::sync_channel::<ScoreJob>(4);
        let (reply, _keep) = mpsc::channel();
        for _ in 0..2 {
            tx.try_send(ScoreJob {
                features: vec![],
                cache_key: vec![],
                reply: reply.clone(),
            })
            .unwrap();
        }
        drop(tx);
        let batch = collect_batch(&rx, 8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(collect_batch(&rx, 8, Duration::from_millis(1)).is_none());
    }
}
