//! The micro-batching core: job types, the pure batched scorer, and
//! its panic-isolated wrapper.
//!
//! Acceptor threads enqueue [`ScoreJob`]s into a bounded channel; the
//! scorer thread drains up to `max_batch` jobs (or until the batch
//! deadline) and runs **one** batched forward pass via
//! [`score_rows`]. The contract — pinned by this crate's proptests —
//! is that batched scores are bit-identical to scoring each row alone,
//! so batching is purely a throughput optimization, never a semantic
//! one.
//!
//! [`score_rows_isolated`] hardens that hot path: the batched forward
//! runs under `catch_unwind`, and if it panics (or errors) every row is
//! re-scored alone, each under its own `catch_unwind`, so a poisoned
//! row fails by itself with a typed `internal` error while its
//! batchmates still get their bit-exact scores — one bad request can
//! never kill the scorer loop or starve the batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use maleva_nn::{Network, NnError};

use crate::error::ServeError;
use crate::fault::{FaultInjector, FaultSite};

/// One pending scoring request travelling from a connection thread to
/// the scorer thread.
pub struct ScoreJob {
    /// Transformed feature row (already through the feature pipeline).
    pub features: Vec<f64>,
    /// Quantized cache key for post-scoring insertion.
    pub cache_key: Vec<i64>,
    /// Where the scorer sends the result: the score, or the typed
    /// error for a row that failed in isolation.
    pub reply: mpsc::Sender<Result<ScoredReply, ServeError>>,
    /// Wire trace id propagated from the client (`0` when absent), so
    /// batch spans can be tagged with every member's trace.
    pub trace_id: u64,
    /// The client's wire span id for this attempt (`0` when absent).
    pub client_span: u64,
    /// When the connection thread enqueued the job; the gap to
    /// `received_at` is the `queue_wait` stage.
    pub enqueued_at: Instant,
    /// When the scorer popped the job off the queue, stamped by
    /// [`collect_batch`]; the gap to batch execution is `batch_wait`.
    pub received_at: Instant,
}

impl ScoreJob {
    /// Builds a job stamped "enqueued now" with no trace context; the
    /// caller sets `trace_id` / `client_span` when the wire carried one.
    pub fn new(
        features: Vec<f64>,
        cache_key: Vec<i64>,
        reply: mpsc::Sender<Result<ScoredReply, ServeError>>,
    ) -> Self {
        let now = Instant::now();
        ScoreJob {
            features,
            cache_key,
            reply,
            trace_id: 0,
            client_span: 0,
            enqueued_at: now,
            received_at: now,
        }
    }
}

/// The scorer's answer to one [`ScoreJob`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredReply {
    /// Malware confidence in `[0, 1]`.
    pub score: f64,
    /// Number of rows in the batch this job was scored with.
    pub batch_size: usize,
    /// Time the job sat in the scoring queue before the scorer popped it.
    pub queue_wait: Duration,
    /// Time the job waited inside the forming batch before execution.
    pub batch_wait: Duration,
    /// Time spent in the batched forward pass (shared by the batch).
    pub inference: Duration,
    /// Generation of the model that scored this batch (0 = the boot
    /// model; see [`crate::reload::ModelSlot`]).
    pub generation: u64,
}

/// Scores `rows` (transformed features) in one batched forward pass,
/// returning the malware confidence (class-1 probability) per row.
///
/// Bit-identical to calling the network on each row individually — see
/// [`maleva_nn::Network::predict_proba_rows`].
///
/// # Errors
///
/// Returns [`NnError::InputShape`] if `rows` is empty or any row's
/// width differs from the network's input dimensionality.
pub fn score_rows(network: &Network, rows: &[Vec<f64>]) -> Result<Vec<f64>, NnError> {
    let proba = network.predict_proba_rows(rows)?;
    Ok((0..proba.rows()).map(|r| proba.get(r, 1)).collect())
}

/// Reference implementation: scores each row with its own forward pass.
/// Exists so tests can assert the batched path bit-identically matches.
///
/// # Errors
///
/// Returns [`NnError::InputShape`] on row-width mismatch.
pub fn score_rows_sequential(network: &Network, rows: &[Vec<f64>]) -> Result<Vec<f64>, NnError> {
    rows.iter()
        .map(|row| {
            let proba = network.predict_proba_rows(std::slice::from_ref(row))?;
            Ok(proba.get(0, 1))
        })
        .collect()
}

/// Outcome of scoring one batch with panic isolation
/// ([`score_rows_isolated`]).
pub struct BatchOutcome {
    /// Per-row result, index-aligned with the input rows: the score,
    /// or the failure message for a row that failed alone.
    pub scores: Vec<Result<f64, String>>,
    /// Whether the batched forward panicked or errored and the batch
    /// fell back to per-row scoring.
    pub batch_failed: bool,
    /// Rows that failed even in isolation (the `Err` entries).
    pub row_failures: u64,
}

/// Extracts a printable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "scorer panicked (non-string payload)".to_string()
    }
}

/// Scores `rows` with panic isolation: one batched forward pass under
/// `catch_unwind`; if it panics or errors, each row is re-scored alone
/// under its own `catch_unwind`, so a poisoned row fails by itself
/// while the rest of the batch still gets bit-exact scores.
///
/// `faults` drives the injectable failure points
/// ([`FaultSite::BatchPanic`] fires inside the batched pass,
/// [`FaultSite::RowPanic`] inside the per-row fallback); pass a
/// disabled injector in production.
pub fn score_rows_isolated(
    network: &Network,
    rows: &[Vec<f64>],
    faults: &FaultInjector,
) -> BatchOutcome {
    let batched = catch_unwind(AssertUnwindSafe(|| {
        if faults.should_fire(FaultSite::BatchPanic) {
            panic!("injected fault: scorer batch panic");
        }
        score_rows(network, rows)
    }));
    if let Ok(Ok(scores)) = batched {
        return BatchOutcome {
            scores: scores.into_iter().map(Ok).collect(),
            batch_failed: false,
            row_failures: 0,
        };
    }
    // The batch panicked or errored: isolate the poison by scoring
    // every row alone, each under its own catch_unwind.
    let mut row_failures = 0u64;
    let scores = rows
        .iter()
        .map(|row| {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                if faults.should_fire(FaultSite::RowPanic) {
                    panic!("injected fault: scorer row panic");
                }
                score_rows(network, std::slice::from_ref(row)).map(|scores| scores[0])
            }));
            match attempt {
                Ok(Ok(score)) => Ok(score),
                Ok(Err(e)) => {
                    row_failures += 1;
                    Err(e.to_string())
                }
                Err(payload) => {
                    row_failures += 1;
                    Err(panic_message(payload))
                }
            }
        })
        .collect();
    BatchOutcome {
        scores,
        batch_failed: true,
        row_failures,
    }
}

/// Drains one micro-batch from `rx`: blocks for the first job, then
/// keeps collecting until `max_batch` jobs are gathered or
/// `batch_timeout` elapses since the first arrival. Returns `None` once
/// the channel is disconnected and empty (drain complete).
///
/// Each job's `received_at` is stamped as it is popped, ending its
/// `queue_wait` stage and starting its `batch_wait`.
pub fn collect_batch(
    rx: &mpsc::Receiver<ScoreJob>,
    max_batch: usize,
    batch_timeout: Duration,
) -> Option<Vec<ScoreJob>> {
    let mut first = rx.recv().ok()?;
    first.received_at = Instant::now();
    let mut jobs = vec![first];
    let deadline = Instant::now() + batch_timeout;
    while jobs.len() < max_batch {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let job = if remaining.is_zero() {
            // Deadline passed: take whatever is already queued, but do
            // not wait for stragglers.
            match rx.try_recv() {
                Ok(job) => job,
                Err(_) => break,
            }
        } else {
            match rx.recv_timeout(remaining) {
                Ok(job) => job,
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        };
        let mut job = job;
        job.received_at = Instant::now();
        jobs.push(job);
    }
    Some(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultAction, FaultPlan};
    use maleva_nn::{Activation, NetworkBuilder};

    /// Silences the default panic hook for intentionally injected
    /// panics (they are caught by `catch_unwind`; the hook would still
    /// spam stderr). Installed once per test binary; everything else
    /// still reaches the previous hook.
    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected fault"));
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    fn net() -> Network {
        NetworkBuilder::new(4)
            .layer(6, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn batched_equals_sequential_bitwise() {
        let net = net();
        let rows: Vec<Vec<f64>> = (0..13)
            .map(|i| {
                (0..4)
                    .map(|j| ((i * 7 + j) as f64 * 0.13).sin().abs())
                    .collect()
            })
            .collect();
        let batched = score_rows(&net, &rows).unwrap();
        let sequential = score_rows_sequential(&net, &rows).unwrap();
        assert_eq!(batched.len(), 13);
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.to_bits(), s.to_bits());
        }
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..4)
                    .map(|j| ((i * 5 + j) as f64 * 0.21).cos().abs())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn isolated_scoring_without_faults_is_bit_identical() {
        let net = net();
        let rows = rows(9);
        let reference = score_rows(&net, &rows).unwrap();
        let outcome = score_rows_isolated(&net, &rows, &FaultInjector::new(FaultPlan::disabled()));
        assert!(!outcome.batch_failed);
        assert_eq!(outcome.row_failures, 0);
        for (got, want) in outcome.scores.iter().zip(&reference) {
            assert_eq!(got.as_ref().unwrap().to_bits(), want.to_bits());
        }
    }

    #[test]
    fn batch_panic_falls_back_to_per_row_with_identical_bits() {
        quiet_injected_panics();
        let net = net();
        let rows = rows(7);
        let reference = score_rows(&net, &rows).unwrap();
        // Every batched attempt panics; the per-row fallback is clean.
        let plan = FaultPlan::disabled().with(FaultSite::BatchPanic, FaultAction::EveryNth(1));
        let injector = FaultInjector::new(plan);
        let outcome = score_rows_isolated(&net, &rows, &injector);
        assert!(outcome.batch_failed);
        assert_eq!(outcome.row_failures, 0);
        assert_eq!(injector.fired(FaultSite::BatchPanic), 1);
        for (got, want) in outcome.scores.iter().zip(&reference) {
            assert_eq!(got.as_ref().unwrap().to_bits(), want.to_bits());
        }
    }

    #[test]
    fn poisoned_row_fails_alone_and_neighbors_survive() {
        quiet_injected_panics();
        let net = net();
        let rows = rows(6);
        let reference = score_rows(&net, &rows).unwrap();
        // The batch panics, then exactly one of the six fallback rows
        // panics too — that row alone must carry the error.
        let plan = FaultPlan::disabled()
            .with(FaultSite::BatchPanic, FaultAction::EveryNth(1))
            .with(FaultSite::RowPanic, FaultAction::EveryNth(6));
        let outcome = score_rows_isolated(&net, &rows, &FaultInjector::new(plan));
        assert!(outcome.batch_failed);
        assert_eq!(outcome.row_failures, 1);
        let mut failed = 0;
        for (got, want) in outcome.scores.iter().zip(&reference) {
            match got {
                Ok(score) => assert_eq!(score.to_bits(), want.to_bits()),
                Err(msg) => {
                    failed += 1;
                    assert!(msg.contains("injected fault"), "{msg}");
                }
            }
        }
        assert_eq!(failed, 1);
    }

    #[test]
    fn collect_batch_honors_max_batch() {
        let (tx, rx) = mpsc::sync_channel::<ScoreJob>(16);
        let (reply, _keep) = mpsc::channel();
        for _ in 0..5 {
            tx.try_send(ScoreJob::new(vec![0.0; 4], vec![], reply.clone()))
                .unwrap();
        }
        let batch = collect_batch(&rx, 3, Duration::from_millis(50)).unwrap();
        assert_eq!(batch.len(), 3);
        let batch = collect_batch(&rx, 3, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn collect_batch_returns_none_when_disconnected() {
        let (tx, rx) = mpsc::sync_channel::<ScoreJob>(4);
        drop(tx);
        assert!(collect_batch(&rx, 8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn collect_batch_drains_leftovers_after_disconnect() {
        let (tx, rx) = mpsc::sync_channel::<ScoreJob>(4);
        let (reply, _keep) = mpsc::channel();
        for _ in 0..2 {
            tx.try_send(ScoreJob::new(vec![], vec![], reply.clone()))
                .unwrap();
        }
        drop(tx);
        let batch = collect_batch(&rx, 8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(collect_batch(&rx, 8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn collect_batch_stamps_received_at_per_job() {
        let (tx, rx) = mpsc::sync_channel::<ScoreJob>(4);
        let (reply, _keep) = mpsc::channel();
        let job = ScoreJob::new(vec![], vec![], reply.clone());
        let enqueued = job.enqueued_at;
        tx.try_send(job).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let batch = collect_batch(&rx, 1, Duration::from_millis(1)).unwrap();
        let popped = &batch[0];
        assert!(popped.received_at >= enqueued);
        assert!(
            popped.received_at.duration_since(enqueued) >= Duration::from_millis(4),
            "queue wait should cover the sleep"
        );
    }
}
