//! LRU score cache keyed by the quantized feature vector.
//!
//! The cache sits in front of the micro-batch queue: a hit answers
//! without touching the network at all. Keys are the **quantized**
//! transformed features (fixed-point at [`QUANT`] resolution) rather
//! than raw `f64` bits, so two requests whose features differ only by
//! sub-resolution noise share an entry; storing the full quantized
//! vector (not just its hash) makes collisions impossible — a hit is a
//! hit by value equality.
//!
//! The implementation is a classic vec-backed doubly-linked list +
//! `HashMap` index: O(1) get/insert/evict, no external dependencies.

use std::collections::HashMap;
use std::hash::Hash;

/// Fixed-point quantization resolution for cache keys: features (which
/// live in `[0, 1]`) are rounded to multiples of `1 / QUANT`.
pub const QUANT: f64 = 1e9;

/// Quantizes a transformed feature vector into a cache key.
///
/// Non-finite entries map to sentinel values so a (guarded-against
/// upstream, but defensively handled) NaN can never poison key equality.
pub fn quantize(features: &[f64]) -> Vec<i64> {
    features
        .iter()
        .map(|&v| {
            if v.is_finite() {
                (v * QUANT).round() as i64
            } else if v.is_nan() {
                i64::MIN
            } else if v > 0.0 {
                i64::MAX
            } else {
                i64::MIN + 1
            }
        })
        .collect()
}

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity least-recently-used map.
///
/// `get` refreshes recency; `insert` evicts the least-recently-used
/// entry once the capacity is reached. A capacity of zero disables the
/// cache entirely (every `get` misses, every `insert` is dropped).
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most-recently-used node index, or `NIL` when empty.
    head: usize,
    /// Least-recently-used node index, or `NIL` when empty.
    tail: usize,
    /// Reusable slots from evictions (kept at most one deep: evict and
    /// insert are paired, so the free list never grows).
    free: Vec<usize>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks `key` up, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let &idx = self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(self.nodes[idx].value.clone())
    }

    /// Inserts (or refreshes) `key -> value`, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.nodes[lru].key);
            self.free.push(lru);
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c: LruCache<Vec<i64>, f64> = LruCache::new(2);
        assert!(c.get(&vec![1]).is_none());
        c.insert(vec![1], 0.25);
        assert_eq!(c.get(&vec![1]), Some(0.25));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<i64, i64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // refresh 1; LRU is now 2
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_refreshes_existing_keys() {
        let mut c: LruCache<i64, i64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh, not a new entry; LRU stays 2
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut c: LruCache<i64, i64> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.get(&1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn stress_against_a_naive_model() {
        // Model: Vec<(K, V)> ordered most-recent-first.
        let mut c: LruCache<u64, u64> = LruCache::new(8);
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x12345u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 20;
            if state.is_multiple_of(3) {
                let got = c.get(&key);
                let want = model.iter().position(|&(k, _)| k == key).map(|i| {
                    let (k, v) = model.remove(i);
                    model.insert(0, (k, v));
                    v
                });
                assert_eq!(got, want);
            } else {
                let value = state % 1000;
                c.insert(key, value);
                if let Some(i) = model.iter().position(|&(k, _)| k == key) {
                    model.remove(i);
                }
                model.insert(0, (key, value));
                model.truncate(8);
            }
            assert_eq!(c.len(), model.len());
        }
    }

    #[test]
    fn quantization_is_stable_and_total() {
        let a = quantize(&[0.5, 0.25, 1.0]);
        let b = quantize(&[0.5 + 1e-13, 0.25, 1.0]);
        assert_eq!(a, b, "sub-resolution noise shares a key");
        let weird = quantize(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(weird, vec![i64::MIN, i64::MAX, i64::MIN + 1]);
    }
}
