use std::error::Error;
use std::fmt;

/// Typed protocol/service errors, each of which maps to one `error`
/// response on the wire (see [`crate::protocol`]).
///
/// Like `maleva-eval`'s `EvalError`, every variant names the condition
/// precisely so clients can branch on `kind` without parsing prose; a
/// malformed request must never panic the server or hang the
/// connection.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request line is not valid JSON.
    MalformedJson {
        /// Parser diagnostic.
        detail: String,
    },
    /// The request JSON parsed but is not a known request shape.
    UnknownCommand {
        /// The offending `cmd` value (or a shape description).
        command: String,
    },
    /// `features` has the wrong number of entries.
    WrongDimension {
        /// The detector's feature dimensionality.
        expected: usize,
        /// What the request supplied.
        actual: usize,
    },
    /// A feature count is NaN, infinite, negative, fractional, or too
    /// large to be an API-call count.
    InvalidFeature {
        /// Index of the first offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The request line exceeds the server's line-length limit.
    LineTooLong {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The scoring queue is full (or admission control shed the
    /// request); the client should back off and retry.
    Overloaded {
        /// The queue's bounded capacity.
        capacity: usize,
        /// Server-suggested wait before retrying, in milliseconds,
        /// scaled to the current queue depth.
        retry_after_ms: u64,
    },
    /// The request could not be scored within the server's per-request
    /// deadline; the reply channel was abandoned and the connection
    /// stays usable.
    DeadlineExceeded {
        /// The configured per-request deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The sentinel flagged this client's query pattern as a probable
    /// extraction probe; the client is rate-limited. Deterministic for
    /// a given (sentinel seed, client history), so runs replay exactly.
    Throttled {
        /// Server-suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// A `{"cmd": "reload"}` could not install the new model; the
    /// server keeps serving the current generation untouched.
    ReloadFailed {
        /// What went wrong (unreadable artifact, shape mismatch, …).
        detail: String,
    },
    /// The scorer failed internally (should not happen for validated
    /// input; surfaced instead of hanging the connection).
    Internal {
        /// What went wrong.
        detail: String,
    },
}

impl ServeError {
    /// A stable machine-readable tag for the error (the wire `kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::MalformedJson { .. } => "malformed_json",
            ServeError::UnknownCommand { .. } => "unknown_command",
            ServeError::WrongDimension { .. } => "wrong_dimension",
            ServeError::InvalidFeature { .. } => "invalid_feature",
            ServeError::LineTooLong { .. } => "line_too_long",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Throttled { .. } => "throttled",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::ReloadFailed { .. } => "reload_failed",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// Whether the client may retry the identical request later
    /// (transient service conditions, as opposed to malformed input).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::Throttled { .. }
        )
    }

    /// Server-suggested retry delay in milliseconds, when the error
    /// carries one (`overloaded` and `throttled` do).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Overloaded { retry_after_ms, .. }
            | ServeError::Throttled { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::MalformedJson { detail } => write!(f, "malformed JSON: {detail}"),
            ServeError::UnknownCommand { command } => write!(f, "unknown command: {command}"),
            ServeError::WrongDimension { expected, actual } => {
                write!(f, "expected {expected} features, got {actual}")
            }
            ServeError::InvalidFeature { index, value } => {
                write!(f, "feature {index} is not a valid API-call count: {value}")
            }
            ServeError::LineTooLong { limit } => {
                write!(f, "request line exceeds the {limit}-byte limit")
            }
            ServeError::Overloaded {
                capacity,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "scoring queue full ({capacity} pending); retry in {retry_after_ms} ms"
                )
            }
            ServeError::DeadlineExceeded { deadline_ms } => {
                write!(f, "request not scored within the {deadline_ms} ms deadline")
            }
            ServeError::Throttled { retry_after_ms } => {
                write!(
                    f,
                    "query pattern flagged by the sentinel; retry in {retry_after_ms} ms"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::ReloadFailed { detail } => write!(f, "model reload failed: {detail}"),
            ServeError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let all = [
            ServeError::MalformedJson { detail: "x".into() },
            ServeError::UnknownCommand {
                command: "x".into(),
            },
            ServeError::WrongDimension {
                expected: 1,
                actual: 2,
            },
            ServeError::InvalidFeature {
                index: 0,
                value: -1.0,
            },
            ServeError::LineTooLong { limit: 8 },
            ServeError::Overloaded {
                capacity: 4,
                retry_after_ms: 5,
            },
            ServeError::DeadlineExceeded { deadline_ms: 100 },
            ServeError::Throttled { retry_after_ms: 25 },
            ServeError::ShuttingDown,
            ServeError::ReloadFailed { detail: "x".into() },
            ServeError::Internal { detail: "x".into() },
        ];
        let kinds: std::collections::HashSet<&str> = all.iter().map(ServeError::kind).collect();
        assert_eq!(kinds.len(), all.len());
        assert!(all.iter().all(|e| !e.to_string().is_empty()));
    }

    #[test]
    fn only_transient_conditions_are_retryable() {
        let overloaded = ServeError::Overloaded {
            capacity: 1,
            retry_after_ms: 7,
        };
        assert!(overloaded.is_retryable());
        assert_eq!(overloaded.retry_after_ms(), Some(7));
        let deadline = ServeError::DeadlineExceeded { deadline_ms: 50 };
        assert!(deadline.is_retryable());
        assert_eq!(deadline.retry_after_ms(), None);
        let throttled = ServeError::Throttled { retry_after_ms: 25 };
        assert!(throttled.is_retryable());
        assert_eq!(throttled.retry_after_ms(), Some(25));
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::ReloadFailed {
            detail: String::new()
        }
        .is_retryable());
        assert!(!ServeError::MalformedJson {
            detail: String::new()
        }
        .is_retryable());
    }
}
