//! Deterministic fault injection for the serving path.
//!
//! A [`FaultPlan`] names *where* faults fire (a [`FaultSite`]) and *how
//! often* (a [`FaultAction`]); a [`FaultInjector`] executes the plan
//! with one atomic sequence counter per site, so the decision for the
//! N-th event at a site is a pure function of `(seed, site, N)` —
//! rerunning the same workload with the same seed injects the same
//! faults at the same points regardless of thread interleaving.
//!
//! Sites cover the failure modes a production scorer must survive:
//! connections reset at accept or mid-response, slow/partial reads and
//! writes, scorer-thread panics (batch-level and per-row), and
//! artificial scoring latency. The server wires each site into its
//! acceptor, connection, and scorer threads; the chaos soak test and the
//! `serve_load` degraded phase drive traffic against an injected server
//! and assert nothing is lost or corrupted.
//!
//! Plans parse from a compact spec string (also read from the
//! `MALEVA_FAULTS` environment variable by the CLI):
//!
//! ```text
//! seed=7,accept_reset=@5,write_reset=p0.02,slow_read=@23,batch_panic=@7,delay_ms=2
//! ```
//!
//! `@N` fires every N-th event at the site (phase-shifted by the seed);
//! `pF` (or a bare float) fires with probability F, drawn from a
//! counter-based hash of `(seed, site, sequence)`. `delay_ms` sets the
//! sleep used by the slow/latency sites.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where in the serving path a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Close the connection immediately after accepting it.
    AcceptReset,
    /// Sleep before reading the next request line (slow client read).
    SlowRead,
    /// Write the response in two chunks with a pause between them
    /// (slow, partial write).
    SlowWrite,
    /// Drop the connection instead of writing a response — the request
    /// was processed but the reply is lost on the wire.
    WriteReset,
    /// Panic inside the batched forward pass (the whole batch).
    BatchPanic,
    /// Panic inside the per-row fallback pass (a poisoned row).
    RowPanic,
    /// Sleep before scoring a batch (artificial scorer latency).
    ScoreDelay,
}

/// Every site, in wire/counter order.
pub const ALL_SITES: [FaultSite; 7] = [
    FaultSite::AcceptReset,
    FaultSite::SlowRead,
    FaultSite::SlowWrite,
    FaultSite::WriteReset,
    FaultSite::BatchPanic,
    FaultSite::RowPanic,
    FaultSite::ScoreDelay,
];

impl FaultSite {
    /// Stable machine-readable name (spec key and health/metrics label).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::AcceptReset => "accept_reset",
            FaultSite::SlowRead => "slow_read",
            FaultSite::SlowWrite => "slow_write",
            FaultSite::WriteReset => "write_reset",
            FaultSite::BatchPanic => "batch_panic",
            FaultSite::RowPanic => "row_panic",
            FaultSite::ScoreDelay => "score_delay",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::AcceptReset => 0,
            FaultSite::SlowRead => 1,
            FaultSite::SlowWrite => 2,
            FaultSite::WriteReset => 3,
            FaultSite::BatchPanic => 4,
            FaultSite::RowPanic => 5,
            FaultSite::ScoreDelay => 6,
        }
    }
}

/// How often a site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Never fires (the default for every site).
    Never,
    /// Fires on every N-th event at the site (N >= 1), phase-shifted
    /// deterministically by the plan seed.
    EveryNth(u64),
    /// Fires with probability `p` in `[0, 1]`, decided by a
    /// counter-based hash of `(seed, site, sequence)`.
    Prob(f64),
}

/// A complete, seedable fault configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all per-site decision streams.
    pub seed: u64,
    /// Sleep used by [`FaultSite::SlowRead`], [`FaultSite::SlowWrite`],
    /// and [`FaultSite::ScoreDelay`] when they fire.
    pub delay: Duration,
    actions: [FaultAction; ALL_SITES.len()],
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// A plan where no site ever fires.
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            delay: Duration::from_millis(2),
            actions: [FaultAction::Never; ALL_SITES.len()],
        }
    }

    /// Whether any site can fire at all.
    pub fn is_enabled(&self) -> bool {
        self.actions
            .iter()
            .any(|a| !matches!(a, FaultAction::Never))
    }

    /// The action configured for `site`.
    pub fn action(&self, site: FaultSite) -> FaultAction {
        self.actions[site.index()]
    }

    /// Builder-style: sets the action for one site.
    #[must_use]
    pub fn with(mut self, site: FaultSite, action: FaultAction) -> Self {
        self.actions[site.index()] = action;
        self
    }

    /// Builder-style: sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: sets the slow/latency sleep.
    #[must_use]
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Parses a spec string like
    /// `seed=7,accept_reset=@5,write_reset=p0.02,delay_ms=2`.
    ///
    /// Site values are `@N` (every N-th event), `pF`, or a bare float
    /// in `[0, 1]` (probability). An empty spec is the disabled plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::disabled();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` is not key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad fault seed `{value}`: {e}"))?;
                }
                "delay_ms" => {
                    let ms: u64 = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad delay_ms `{value}`: {e}"))?;
                    plan.delay = Duration::from_millis(ms);
                }
                key => {
                    let site = ALL_SITES
                        .into_iter()
                        .find(|s| s.name() == key)
                        .ok_or_else(|| format!("unknown fault site `{key}`"))?;
                    plan.actions[site.index()] = parse_action(value.trim())?;
                }
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `MALEVA_FAULTS` environment variable
    /// (disabled when unset or empty).
    ///
    /// # Errors
    ///
    /// Returns the parse error for a malformed spec.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("MALEVA_FAULTS") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::disabled()),
        }
    }
}

fn parse_action(value: &str) -> Result<FaultAction, String> {
    if let Some(n) = value.strip_prefix('@') {
        let n: u64 = n
            .parse()
            .map_err(|e| format!("bad period `{value}`: {e}"))?;
        if n == 0 {
            return Err(format!("bad period `{value}`: must be >= 1"));
        }
        return Ok(FaultAction::EveryNth(n));
    }
    let p: f64 = value
        .strip_prefix('p')
        .unwrap_or(value)
        .parse()
        .map_err(|e| format!("bad probability `{value}`: {e}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability `{value}` outside [0, 1]"));
    }
    if p == 0.0 {
        Ok(FaultAction::Never)
    } else {
        Ok(FaultAction::Prob(p))
    }
}

/// SplitMix64: a tiny, high-quality mixing function — the decision for
/// event N at a site is `mix(seed ^ site_salt ^ N)`, so streams are
/// independent across sites and reproducible per seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-site salt so identical sequence numbers draw independently.
fn site_salt(site: FaultSite) -> u64 {
    0x5157_badc_0ffe_e000 ^ ((site.index() as u64 + 1).wrapping_mul(0x0b4c_9d2a_8f31_77d1))
}

struct SiteState {
    seq: AtomicU64,
    fired: AtomicU64,
}

/// Executes a [`FaultPlan`]: one atomic event counter and one fired
/// counter per site. Cheap to consult when the plan is disabled (a
/// single branch, no atomics).
pub struct FaultInjector {
    plan: FaultPlan,
    enabled: bool,
    sites: [SiteState; ALL_SITES.len()],
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("fired", &self.fired_counts())
            .finish()
    }
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let enabled = plan.is_enabled();
        FaultInjector {
            plan,
            enabled,
            sites: std::array::from_fn(|_| SiteState {
                seq: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            }),
        }
    }

    /// Whether any site can fire.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The plan's slow/latency sleep.
    pub fn delay(&self) -> Duration {
        self.plan.delay
    }

    /// Consumes one event at `site` and reports whether the fault
    /// fires. Decision N at a site is a pure function of
    /// `(seed, site, N)`.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        if !self.enabled {
            return false;
        }
        let action = self.plan.action(site);
        if matches!(action, FaultAction::Never) {
            return false;
        }
        let state = &self.sites[site.index()];
        let seq = state.seq.fetch_add(1, Ordering::Relaxed);
        let salt = site_salt(site);
        let fire = match action {
            FaultAction::Never => false,
            FaultAction::EveryNth(n) => {
                // Phase-shift by a seed-derived offset so different
                // seeds fire at different points of the same workload.
                let phase = splitmix64(self.plan.seed ^ salt) % n;
                seq % n == phase
            }
            FaultAction::Prob(p) => {
                let draw = splitmix64(self.plan.seed ^ salt ^ seq);
                // Top 53 bits -> uniform f64 in [0, 1).
                let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
                unit < p
            }
        };
        if fire {
            state.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// [`FaultInjector::should_fire`] plus the configured sleep when it
    /// fires; returns whether it fired.
    pub fn maybe_sleep(&self, site: FaultSite) -> bool {
        if self.should_fire(site) {
            std::thread::sleep(self.plan.delay);
            true
        } else {
            false
        }
    }

    /// How many times `site` has fired.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].fired.load(Ordering::Relaxed)
    }

    /// `(site name, fired count)` for every site, in stable order.
    pub fn fired_counts(&self) -> Vec<(&'static str, u64)> {
        ALL_SITES
            .into_iter()
            .map(|s| (s.name(), self.fired(s)))
            .collect()
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        ALL_SITES.into_iter().map(|s| self.fired(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::disabled());
        assert!(!inj.enabled());
        for _ in 0..100 {
            assert!(!inj.should_fire(FaultSite::BatchPanic));
        }
        assert_eq!(inj.total_fired(), 0);
    }

    #[test]
    fn every_nth_fires_exactly_once_per_period() {
        let plan = FaultPlan::disabled()
            .with_seed(9)
            .with(FaultSite::WriteReset, FaultAction::EveryNth(5));
        let inj = FaultInjector::new(plan);
        let fired: Vec<bool> = (0..25)
            .map(|_| inj.should_fire(FaultSite::WriteReset))
            .collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 5);
        // Exactly one firing in every window of 5 consecutive events.
        for window in fired.chunks(5) {
            assert_eq!(window.iter().filter(|&&f| f).count(), 1);
        }
    }

    #[test]
    fn decision_streams_are_deterministic_per_seed() {
        let plan = FaultPlan::disabled()
            .with_seed(1234)
            .with(FaultSite::SlowRead, FaultAction::Prob(0.3))
            .with(FaultSite::BatchPanic, FaultAction::EveryNth(7));
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for _ in 0..200 {
            assert_eq!(
                a.should_fire(FaultSite::SlowRead),
                b.should_fire(FaultSite::SlowRead)
            );
            assert_eq!(
                a.should_fire(FaultSite::BatchPanic),
                b.should_fire(FaultSite::BatchPanic)
            );
        }
        assert_eq!(a.fired_counts(), b.fired_counts());
    }

    #[test]
    fn different_seeds_shift_periodic_phase() {
        let firing_index = |seed: u64| -> usize {
            let plan = FaultPlan::disabled()
                .with_seed(seed)
                .with(FaultSite::RowPanic, FaultAction::EveryNth(50));
            let inj = FaultInjector::new(plan);
            (0..50)
                .position(|_| inj.should_fire(FaultSite::RowPanic))
                .expect("one firing per period")
        };
        let indices: std::collections::HashSet<usize> = (0..20).map(firing_index).collect();
        assert!(indices.len() > 1, "seed never changes the phase");
    }

    #[test]
    fn probability_rate_is_roughly_honored() {
        let plan = FaultPlan::disabled()
            .with_seed(42)
            .with(FaultSite::SlowWrite, FaultAction::Prob(0.25));
        let inj = FaultInjector::new(plan);
        let n = 4000;
        for _ in 0..n {
            inj.should_fire(FaultSite::SlowWrite);
        }
        let rate = inj.fired(FaultSite::SlowWrite) as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::disabled()
            .with_seed(7)
            .with(FaultSite::SlowRead, FaultAction::Prob(0.5))
            .with(FaultSite::SlowWrite, FaultAction::Prob(0.5));
        let inj = FaultInjector::new(plan);
        let mut same = 0;
        for _ in 0..256 {
            let a = inj.should_fire(FaultSite::SlowRead);
            let b = inj.should_fire(FaultSite::SlowWrite);
            same += usize::from(a == b);
        }
        // Perfectly correlated streams would agree 256 times.
        assert!((64..=192).contains(&same), "agreement {same}/256");
    }

    #[test]
    fn spec_round_trip_and_errors() {
        let plan = FaultPlan::parse(
            "seed=7, accept_reset=@5, write_reset=p0.02, slow_read=0.1, delay_ms=3",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.delay, Duration::from_millis(3));
        assert_eq!(
            plan.action(FaultSite::AcceptReset),
            FaultAction::EveryNth(5)
        );
        assert_eq!(plan.action(FaultSite::WriteReset), FaultAction::Prob(0.02));
        assert_eq!(plan.action(FaultSite::SlowRead), FaultAction::Prob(0.1));
        assert_eq!(plan.action(FaultSite::BatchPanic), FaultAction::Never);
        assert!(plan.is_enabled());

        assert!(FaultPlan::parse("").unwrap() == FaultPlan::disabled());
        assert!(
            FaultPlan::parse("slow_read=p0")
                .unwrap()
                .action(FaultSite::SlowRead)
                == FaultAction::Never
        );
        for bad in [
            "nonsense",
            "unknown_site=@3",
            "slow_read=@0",
            "slow_read=p1.5",
            "seed=abc",
            "delay_ms=-1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }
}
