//! `maleva-serve` — a batched TCP scoring service for the maleva
//! detector.
//!
//! The paper's detector is an operational product: a fleet of clients
//! submits PE samples and gets verdicts back. This crate is that
//! serving hot path for the reproduction — a multi-threaded
//! `std::net` server speaking newline-delimited JSON
//! (see [`protocol`]) with the structure production scorers use:
//!
//! * **sharded event loops** ([`reactor`]) — `ServeConfig::shards`
//!   independent poll-based event loops, with connections pinned to a
//!   shard by accept round-robin; each shard owns its own batch queue,
//!   LRU cache, sentinel window, and metrics, merged on demand for
//!   `{"cmd": "stats"}` and the Prometheus exposition so the hot path
//!   never contends across shards;
//! * **micro-batching** ([`batch`]) — requests queue into a bounded
//!   channel; the scorer thread drains up to `max_batch` rows and runs
//!   one batched forward pass, with batched scores **bit-identical**
//!   to per-row scoring (batching is a throughput optimization, never
//!   a semantic change);
//! * **atomic hot reload** ([`reload`]) — `{"cmd": "reload"}` (or
//!   `maleva reload`) loads new weights from a pipeline/network export
//!   or a checkpoint directory, validates them, and `Arc`-swaps the
//!   model at a batch boundary: in-flight work drains against the old
//!   generation, later batches use the new one, and every response is
//!   attributable to exactly one generation;
//! * **LRU score cache** ([`cache`]) — keyed by the quantized feature
//!   vector, answering repeats without touching the network;
//! * **backpressure** — a full queue yields a typed
//!   [`ServeError::Overloaded`] response instead of blocking, and
//!   shutdown drains in-flight work before stopping;
//! * **resilience** ([`fault`]) — per-request deadlines
//!   (`deadline_exceeded`), admission control that sheds load by queue
//!   depth with a `retry_after_ms` hint, a panic-isolated scorer loop
//!   ([`batch::score_rows_isolated`]), a `{"cmd": "health"}` endpoint,
//!   and a deterministic seedable fault injector (`MALEVA_FAULTS`)
//!   driving the chaos soak tests;
//! * **metrics** ([`metrics`]) — lock-free counters and a fixed-bucket
//!   latency histogram, exposed via `{"cmd": "stats"}`;
//! * **extraction sentinel** ([`sentinel`]) — a per-client stateful
//!   query-pattern detector (near-duplicate probing and
//!   decision-boundary oscillation over the cache-key quantization)
//!   that deterministically throttles or verdict-poisons suspected
//!   model-extraction clients, inspectable via `{"cmd": "sentinel"}`;
//! * **distributed tracing** — score requests may carry a wire trace
//!   context (`trace_id`/`span_id`); the server tags its request spans
//!   and batch events with it and decomposes every request into six
//!   latency stages (`queue_wait`, `batch_wait`, `cache_lookup`,
//!   `sentinel_check`, `inference`, `serialize`), recorded both as
//!   span fields and as `serve_stage_*_us` histograms;
//! * **SLO burn-rate alarms** ([`slo`]) — declarative objectives over
//!   the live metrics (p99 latency, error rate, sentinel false-flag
//!   rate) evaluated as multi-window burn-rate alarms via
//!   `{"cmd": "slo"}`, mirrored into `slo_alarm_*` gauges and
//!   `slo.alarm` trace events.
//!
//! # Quickstart
//!
//! ```no_run
//! use maleva_core::{ExperimentContext, ExperimentScale};
//! use maleva_serve::{spawn, ServeConfig};
//!
//! let ctx = ExperimentContext::build(ExperimentScale::tiny(), 42).unwrap();
//! let handle = spawn(ctx.detector, ServeConfig::default()).unwrap();
//! println!("scoring on {}", handle.addr());
//! handle.join(); // until a client sends {"cmd": "shutdown"}
//! ```

// The crate is unsafe-free except for the `poll(2)` FFI confined to
// `reactor::sys`, which opts back in locally with a SAFETY argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
mod error;
pub mod fault;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod reload;
pub mod sentinel;
mod server;
mod shard;
pub mod slo;

pub use batch::{score_rows, score_rows_isolated, score_rows_sequential, BatchOutcome};
pub use cache::LruCache;
pub use error::ServeError;
pub use fault::{FaultAction, FaultInjector, FaultPlan, FaultSite};
pub use metrics::{Metrics, MetricsSnapshot, StageTimes};
pub use protocol::{parse_request, HealthReport, Request, ScoreResponse, TraceContext};
pub use reload::{load_model, ModelSlot, ModelVersion};
pub use sentinel::{Sentinel, SentinelAction, SentinelConfig, SentinelDecision, SentinelReport};
pub use server::{spawn, ServeConfig, ServerHandle};
pub use slo::{default_serve_slos, SloAlarmReport, SloReport, SloRuntime, SloWindowReport};
