//! Lock-free service metrics: atomic counters plus a fixed-bucket
//! latency histogram.
//!
//! Every counter is a relaxed `AtomicU64` — the snapshot is advisory
//! monitoring data, not a synchronization point, so the hot path pays
//! one uncontended atomic add per event. Latencies land in power-of-two
//! microsecond buckets; percentiles are read off the cumulative bucket
//! counts (upper-bound estimate, ≤ 2x resolution error — plenty for
//! p50/p99 monitoring).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::Serialize;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 holds sub-microsecond), so
/// the top bucket covers everything ≥ ~34 minutes.
const BUCKETS: usize = 32;

/// Shared, lock-free metrics for one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Score requests received (valid enough to reach scoring or cache).
    pub requests: AtomicU64,
    /// Batches executed by the scorer thread.
    pub batches: AtomicU64,
    /// Rows scored through batches (misses that ran the network).
    pub rows_scored: AtomicU64,
    /// Cache hits.
    pub cache_hits: AtomicU64,
    /// Cache misses.
    pub cache_misses: AtomicU64,
    /// Typed error responses sent (malformed input, overload, ...).
    pub errors: AtomicU64,
    /// Requests rejected with `overloaded` (also counted in `errors`).
    pub overloaded: AtomicU64,
    latency_buckets: LatencyBuckets,
}

#[derive(Debug)]
struct LatencyBuckets([AtomicU64; BUCKETS]);

impl Default for LatencyBuckets {
    fn default() -> Self {
        LatencyBuckets(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Bumps a counter by one (relaxed).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter (relaxed).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        };
        self.latency_buckets.0[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The upper bound (µs) of the bucket containing quantile `q`
    /// (`0 < q <= 1`), or 0 when no latencies were recorded.
    fn latency_quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency_buckets
            .0
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i spans [2^(i-1), 2^i) µs; report the upper bound.
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self, cache_entries: usize) -> MetricsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let rows_scored = self.rows_scored.load(Ordering::Relaxed);
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = cache_hits + cache_misses;
        MetricsSnapshot {
            requests,
            batches,
            rows_scored,
            cache_hits,
            cache_misses,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                cache_hits as f64 / lookups as f64
            },
            cache_entries,
            errors: self.errors.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                rows_scored as f64 / batches as f64
            },
            p50_latency_us: self.latency_quantile_us(0.50),
            p99_latency_us: self.latency_quantile_us(0.99),
        }
    }
}

/// A point-in-time copy of the server's counters — the body of the
/// `{"cmd": "stats"}` response and of `BENCH_serve.json` entries.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Score requests received.
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Rows scored by the network (cache misses).
    pub rows_scored: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when no lookups.
    pub cache_hit_rate: f64,
    /// Live entries in the cache at snapshot time.
    pub cache_entries: usize,
    /// Typed error responses sent.
    pub errors: u64,
    /// Overload rejections (subset of `errors`).
    pub overloaded: u64,
    /// `rows_scored / batches`, 0 when no batches ran.
    pub mean_batch_size: f64,
    /// Median request latency, µs (bucket upper bound).
    pub p50_latency_us: u64,
    /// 99th-percentile request latency, µs (bucket upper bound).
    pub p99_latency_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let m = Metrics::new();
        let s = m.snapshot(0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.mean_batch_size, 0.0);
    }

    #[test]
    fn latency_percentiles_track_the_distribution() {
        let m = Metrics::new();
        // 90 fast samples (~8µs) and 10 slow (~1000µs): p50 sits in the
        // fast bucket, p99 in the slow one.
        for _ in 0..90 {
            m.record_latency(Duration::from_micros(8));
        }
        for _ in 0..10 {
            m.record_latency(Duration::from_micros(1000));
        }
        let s = m.snapshot(0);
        assert!(s.p50_latency_us <= 16, "p50 {}", s.p50_latency_us);
        assert!(s.p99_latency_us >= 512, "p99 {}", s.p99_latency_us);
    }

    #[test]
    fn derived_rates_compute() {
        let m = Metrics::new();
        Metrics::add(&m.cache_hits, 3);
        Metrics::add(&m.cache_misses, 1);
        Metrics::add(&m.batches, 2);
        Metrics::add(&m.rows_scored, 12);
        let s = m.snapshot(5);
        assert!((s.cache_hit_rate - 0.75).abs() < 1e-12);
        assert!((s.mean_batch_size - 6.0).abs() < 1e-12);
        assert_eq!(s.cache_entries, 5);
    }

    #[test]
    fn sub_microsecond_latencies_land_in_bucket_zero() {
        let m = Metrics::new();
        m.record_latency(Duration::from_nanos(10));
        let s = m.snapshot(0);
        assert_eq!(s.p50_latency_us, 1);
    }
}
