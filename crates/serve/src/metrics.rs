//! Service metrics built on the shared `maleva-obs` primitives: lock-free
//! counters plus power-of-two histograms for request latency and batch
//! size, registered in a per-server [`Registry`] that renders to
//! Prometheus text exposition for the `{"cmd": "metrics"}` command.
//!
//! Every counter is a relaxed atomic — the snapshot is advisory
//! monitoring data, not a synchronization point, so the hot path pays
//! one uncontended atomic add per event. Latencies land in power-of-two
//! microsecond buckets; percentiles are read off the cumulative bucket
//! counts (upper-bound estimate, ≤ 2x resolution error — plenty for
//! p50/p99 monitoring). Samples at or above the top bucket bound
//! saturate into the last bucket rather than being dropped, so extreme
//! outliers still move the high percentiles.

use std::sync::Arc;
use std::time::Duration;

use maleva_obs::metrics::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
use serde::Serialize;

/// Shared metrics for one server instance. Each server owns its own
/// [`Registry`] so concurrent servers in one process never collide.
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,
    /// Score requests received (valid enough to reach scoring or cache).
    pub requests: Arc<Counter>,
    /// Batches executed by the scorer thread.
    pub batches: Arc<Counter>,
    /// Rows scored through batches (misses that ran the network).
    pub rows_scored: Arc<Counter>,
    /// Cache hits.
    pub cache_hits: Arc<Counter>,
    /// Cache misses.
    pub cache_misses: Arc<Counter>,
    /// Typed error responses sent (malformed input, overload, ...).
    pub errors: Arc<Counter>,
    /// Requests rejected with `overloaded` (also counted in `errors`).
    pub overloaded: Arc<Counter>,
    /// Overload rejections made by admission control *before* the
    /// queue was full (subset of `overloaded`).
    pub shed: Arc<Counter>,
    /// Requests answered with `deadline_exceeded` (also in `errors`).
    pub deadline_exceeded: Arc<Counter>,
    /// Batches whose forward pass panicked (or errored) and fell back
    /// to per-row scoring — the scorer loop survived each one.
    pub scorer_panics: Arc<Counter>,
    /// Rows that failed even the per-row fallback and were answered
    /// with a typed `internal` error.
    pub row_failures: Arc<Counter>,
    /// Faults fired by the injector (0 unless fault injection is on).
    pub faults_injected: Arc<Counter>,
    /// Requests refused with `throttled` by the sentinel (also in
    /// `errors`).
    pub sentinel_throttled: Arc<Counter>,
    /// Requests answered with poisoned scores by the sentinel.
    pub sentinel_poisoned: Arc<Counter>,
    /// Near-duplicate queries observed by the sentinel.
    pub sentinel_near_duplicates: Arc<Counter>,
    /// Decision-boundary verdict flips observed by the sentinel.
    pub sentinel_verdict_flips: Arc<Counter>,
    /// Clients newly flagged by the sentinel.
    pub sentinel_flagged: Arc<Counter>,
    /// Clients currently tracked by the sentinel.
    pub sentinel_tracked_clients: Arc<Gauge>,
    /// Jobs currently waiting in the scoring queue.
    pub queue_depth: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    latency_us: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    /// Per-stage latency histograms, in pipeline order:
    /// `queue_wait`, `batch_wait`, `cache_lookup`, `sentinel_check`,
    /// `inference`, `serialize` (see `maleva_obs::report::STAGES`).
    stages_us: [Arc<Histogram>; 6],
}

/// Per-stage durations for one score request, decomposing its
/// end-to-end latency. Stages a request never entered stay zero (a
/// cache hit has zero `queue_wait`/`batch_wait`/`inference`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimes {
    /// Time in the scoring queue before the scorer popped the job.
    pub queue_wait: Duration,
    /// Time inside the forming batch before execution started.
    pub batch_wait: Duration,
    /// Time spent in the score-cache lookup.
    pub cache_lookup: Duration,
    /// Time spent consulting and updating the sentinel.
    pub sentinel_check: Duration,
    /// Time in the batched forward pass (shared across the batch).
    pub inference: Duration,
    /// Time encoding and writing the response line.
    pub serialize: Duration,
}

impl StageTimes {
    /// The stage durations in pipeline order, microseconds, aligned
    /// with `maleva_obs::report::STAGES`.
    pub fn as_us(&self) -> [u64; 6] {
        [
            self.queue_wait.as_micros() as u64,
            self.batch_wait.as_micros() as u64,
            self.cache_lookup.as_micros() as u64,
            self.sentinel_check.as_micros() as u64,
            self.inference.as_micros() as u64,
            self.serialize.as_micros() as u64,
        ]
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates zeroed metrics registered in a fresh registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = registry.counter("serve_requests_total", "Score requests received.");
        let batches = registry.counter("serve_batches_total", "Batches executed by the scorer.");
        let rows_scored =
            registry.counter("serve_rows_scored_total", "Rows scored through batches.");
        let cache_hits = registry.counter("serve_cache_hits_total", "Score cache hits.");
        let cache_misses = registry.counter("serve_cache_misses_total", "Score cache misses.");
        let errors = registry.counter("serve_errors_total", "Typed error responses sent.");
        let overloaded =
            registry.counter("serve_overloaded_total", "Requests rejected as overloaded.");
        let shed = registry.counter(
            "serve_shed_total",
            "Requests shed by admission control before the queue filled.",
        );
        let deadline_exceeded = registry.counter(
            "serve_deadline_exceeded_total",
            "Requests answered with deadline_exceeded.",
        );
        let scorer_panics = registry.counter(
            "serve_scorer_panics_total",
            "Batched forward passes that panicked and fell back to per-row scoring.",
        );
        let row_failures = registry.counter(
            "serve_row_failures_total",
            "Rows that failed even in per-row isolation.",
        );
        let faults_injected = registry.counter(
            "serve_faults_injected_total",
            "Faults fired by the fault injector.",
        );
        let sentinel_throttled = registry.counter(
            "serve_sentinel_throttled_total",
            "Requests refused with throttled by the sentinel.",
        );
        let sentinel_poisoned = registry.counter(
            "serve_sentinel_poisoned_total",
            "Requests answered with poisoned scores by the sentinel.",
        );
        let sentinel_near_duplicates = registry.counter(
            "serve_sentinel_near_duplicates_total",
            "Near-duplicate queries observed by the sentinel.",
        );
        let sentinel_verdict_flips = registry.counter(
            "serve_sentinel_verdict_flips_total",
            "Decision-boundary verdict flips observed by the sentinel.",
        );
        let sentinel_flagged = registry.counter(
            "serve_sentinel_flagged_total",
            "Clients newly flagged by the sentinel.",
        );
        let sentinel_tracked_clients = registry.gauge(
            "serve_sentinel_tracked_clients",
            "Clients currently tracked by the sentinel.",
        );
        let queue_depth = registry.gauge("serve_queue_depth", "Jobs waiting in the scoring queue.");
        let cache_entries = registry.gauge("serve_cache_entries", "Live score cache entries.");
        let latency_us = registry.histogram(
            "serve_request_latency_us",
            "End-to-end score request latency in microseconds.",
        );
        let batch_size = registry.histogram("serve_batch_size", "Rows per executed scoring batch.");
        let stages_us: [Arc<Histogram>; 6] = std::array::from_fn(|i| {
            let stage = maleva_obs::report::STAGES[i];
            registry.histogram(
                &format!("serve_stage_{stage}_us"),
                &format!("Time score requests spent in the {stage} stage, microseconds."),
            )
        });
        Metrics {
            registry,
            requests,
            batches,
            rows_scored,
            cache_hits,
            cache_misses,
            errors,
            overloaded,
            shed,
            deadline_exceeded,
            scorer_panics,
            row_failures,
            faults_injected,
            sentinel_throttled,
            sentinel_poisoned,
            sentinel_near_duplicates,
            sentinel_verdict_flips,
            sentinel_flagged,
            sentinel_tracked_clients,
            queue_depth,
            cache_entries,
            latency_us,
            batch_size,
            stages_us,
        }
    }

    /// The registry backing this server's metrics, for SLO evaluation
    /// and auxiliary gauges (`slo_alarm_*`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one request's per-stage latency decomposition into the
    /// six `serve_stage_*_us` histograms.
    pub fn record_stages(&self, stages: &StageTimes) {
        for (histogram, us) in self.stages_us.iter().zip(stages.as_us()) {
            histogram.record(us);
        }
    }

    /// Records one request latency (microsecond resolution; values at
    /// or above the top bucket bound saturate into the last bucket).
    pub fn record_latency(&self, elapsed: Duration) {
        self.latency_us.record_duration_us(elapsed);
    }

    /// Records the row count of one executed batch.
    pub fn record_batch_size(&self, rows: u64) {
        self.batch_size.record(rows);
    }

    /// Renders every metric in Prometheus text exposition format,
    /// refreshing the cache-entries gauge first.
    pub fn render_prometheus(&self, cache_entries: usize) -> String {
        self.cache_entries
            .set(cache_entries.min(i64::MAX as usize) as i64);
        self.registry.render_prometheus()
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self, cache_entries: usize) -> MetricsSnapshot {
        let requests = self.requests.get();
        let batches = self.batches.get();
        let rows_scored = self.rows_scored.get();
        let cache_hits = self.cache_hits.get();
        let cache_misses = self.cache_misses.get();
        let lookups = cache_hits + cache_misses;
        MetricsSnapshot {
            requests,
            batches,
            rows_scored,
            cache_hits,
            cache_misses,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                cache_hits as f64 / lookups as f64
            },
            cache_entries,
            errors: self.errors.get(),
            overloaded: self.overloaded.get(),
            shed: self.shed.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            scorer_panics: self.scorer_panics.get(),
            row_failures: self.row_failures.get(),
            faults_injected: self.faults_injected.get(),
            sentinel_throttled: self.sentinel_throttled.get(),
            sentinel_poisoned: self.sentinel_poisoned.get(),
            sentinel_near_duplicates: self.sentinel_near_duplicates.get(),
            sentinel_verdict_flips: self.sentinel_verdict_flips.get(),
            sentinel_flagged: self.sentinel_flagged.get(),
            sentinel_tracked_clients: self.sentinel_tracked_clients.get().max(0) as u64,
            queue_depth: self.queue_depth.get().max(0) as u64,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                rows_scored as f64 / batches as f64
            },
            p50_latency_us: self.latency_us.quantile(0.50),
            p99_latency_us: self.latency_us.quantile(0.99),
            latency_buckets_us: self.latency_us.snapshot_buckets(),
            batch_size_buckets: self.batch_size.snapshot_buckets(),
            latency_sum_us: self.latency_us.sum(),
            batch_size_sum: self.batch_size.sum(),
            stage_buckets_us: self
                .stages_us
                .iter()
                .map(|h| h.snapshot_buckets())
                .collect(),
            stage_sums_us: self.stages_us.iter().map(|h| h.sum()).collect(),
        }
    }

    /// Raises this instance's counters, gauges, and histograms to match
    /// a merged snapshot. This is how the aggregate registry (backing
    /// the Prometheus exposition and the SLO runtime) absorbs per-shard
    /// totals without double-counting: counters and histogram buckets
    /// only ever grow toward the merged target, gauges are set
    /// directly. Callers serialize absorb() calls (the server does,
    /// under its refresh lock).
    pub fn absorb(&self, merged: &MetricsSnapshot) {
        fn raise(counter: &Counter, target: u64) {
            let current = counter.get();
            if target > current {
                counter.add(target - current);
            }
        }
        raise(&self.requests, merged.requests);
        raise(&self.batches, merged.batches);
        raise(&self.rows_scored, merged.rows_scored);
        raise(&self.cache_hits, merged.cache_hits);
        raise(&self.cache_misses, merged.cache_misses);
        raise(&self.errors, merged.errors);
        raise(&self.overloaded, merged.overloaded);
        raise(&self.shed, merged.shed);
        raise(&self.deadline_exceeded, merged.deadline_exceeded);
        raise(&self.scorer_panics, merged.scorer_panics);
        raise(&self.row_failures, merged.row_failures);
        raise(&self.faults_injected, merged.faults_injected);
        raise(&self.sentinel_throttled, merged.sentinel_throttled);
        raise(&self.sentinel_poisoned, merged.sentinel_poisoned);
        raise(
            &self.sentinel_near_duplicates,
            merged.sentinel_near_duplicates,
        );
        raise(&self.sentinel_verdict_flips, merged.sentinel_verdict_flips);
        raise(&self.sentinel_flagged, merged.sentinel_flagged);
        self.sentinel_tracked_clients
            .set(merged.sentinel_tracked_clients.min(i64::MAX as u64) as i64);
        self.queue_depth
            .set(merged.queue_depth.min(i64::MAX as u64) as i64);
        self.cache_entries
            .set(merged.cache_entries.min(i64::MAX as usize) as i64);
        self.latency_us
            .raise_to(&merged.latency_buckets_us, merged.latency_sum_us);
        self.batch_size
            .raise_to(&merged.batch_size_buckets, merged.batch_size_sum);
        for (histogram, (buckets, sum)) in self
            .stages_us
            .iter()
            .zip(merged.stage_buckets_us.iter().zip(&merged.stage_sums_us))
        {
            histogram.raise_to(buckets, *sum);
        }
    }
}

/// A point-in-time copy of the server's counters — the body of the
/// `{"cmd": "stats"}` response and of `BENCH_serve.json` entries. Taken
/// per shard; [`MetricsSnapshot::merge`] combines them into the
/// server-wide view.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Score requests received.
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Rows scored by the network (cache misses).
    pub rows_scored: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when no lookups.
    pub cache_hit_rate: f64,
    /// Live entries in the cache at snapshot time.
    pub cache_entries: usize,
    /// Typed error responses sent.
    pub errors: u64,
    /// Overload rejections (subset of `errors`).
    pub overloaded: u64,
    /// Admission-control rejections before the queue filled (subset of
    /// `overloaded`).
    pub shed: u64,
    /// Requests answered with `deadline_exceeded` (subset of `errors`).
    pub deadline_exceeded: u64,
    /// Batches that panicked and fell back to per-row scoring.
    pub scorer_panics: u64,
    /// Rows that failed even in per-row isolation.
    pub row_failures: u64,
    /// Faults fired by the injector.
    pub faults_injected: u64,
    /// Requests refused with `throttled` by the sentinel (subset of
    /// `errors`).
    pub sentinel_throttled: u64,
    /// Requests answered with poisoned scores.
    pub sentinel_poisoned: u64,
    /// Near-duplicate queries the sentinel observed.
    pub sentinel_near_duplicates: u64,
    /// Decision-boundary verdict flips the sentinel observed.
    pub sentinel_verdict_flips: u64,
    /// Clients newly flagged by the sentinel.
    pub sentinel_flagged: u64,
    /// Clients tracked by the sentinel at snapshot time.
    pub sentinel_tracked_clients: u64,
    /// Jobs waiting in the scoring queue at snapshot time.
    pub queue_depth: u64,
    /// `rows_scored / batches`, 0 when no batches ran.
    pub mean_batch_size: f64,
    /// Median request latency, µs (bucket upper bound).
    pub p50_latency_us: u64,
    /// 99th-percentile request latency, µs (bucket upper bound).
    pub p99_latency_us: u64,
    /// Power-of-two latency buckets: entry `i` counts requests in
    /// `[2^(i-1), 2^i)` µs; the last bucket absorbs everything above.
    pub latency_buckets_us: Vec<u64>,
    /// Power-of-two batch-size buckets, same layout as latencies.
    pub batch_size_buckets: Vec<u64>,
    /// Sum of all recorded request latencies, µs (for merging).
    pub latency_sum_us: u64,
    /// Sum of all recorded batch sizes (for merging).
    pub batch_size_sum: u64,
    /// Per-stage latency buckets in pipeline order (six stages, same
    /// bucket layout as `latency_buckets_us`).
    pub stage_buckets_us: Vec<Vec<u64>>,
    /// Per-stage latency sums, µs, aligned with `stage_buckets_us`.
    pub stage_sums_us: Vec<u64>,
}

impl MetricsSnapshot {
    /// Merges per-shard snapshots into one server-wide snapshot:
    /// counters, gauges, sums, and buckets add element-wise; derived
    /// rates and percentiles are recomputed from the merged totals.
    /// Because every input is itself one coherent snapshot, the merged
    /// counters always equal the per-shard sums — the wire's `stats`
    /// body and its `shards` array can never disagree.
    pub fn merge(shards: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut out = MetricsSnapshot {
            latency_buckets_us: vec![0; HISTOGRAM_BUCKETS],
            batch_size_buckets: vec![0; HISTOGRAM_BUCKETS],
            stage_buckets_us: vec![vec![0; HISTOGRAM_BUCKETS]; 6],
            stage_sums_us: vec![0; 6],
            ..MetricsSnapshot::default()
        };
        fn add_buckets(into: &mut [u64], from: &[u64]) {
            for (dst, src) in into.iter_mut().zip(from) {
                *dst += src;
            }
        }
        for s in shards {
            out.requests += s.requests;
            out.batches += s.batches;
            out.rows_scored += s.rows_scored;
            out.cache_hits += s.cache_hits;
            out.cache_misses += s.cache_misses;
            out.cache_entries += s.cache_entries;
            out.errors += s.errors;
            out.overloaded += s.overloaded;
            out.shed += s.shed;
            out.deadline_exceeded += s.deadline_exceeded;
            out.scorer_panics += s.scorer_panics;
            out.row_failures += s.row_failures;
            out.faults_injected += s.faults_injected;
            out.sentinel_throttled += s.sentinel_throttled;
            out.sentinel_poisoned += s.sentinel_poisoned;
            out.sentinel_near_duplicates += s.sentinel_near_duplicates;
            out.sentinel_verdict_flips += s.sentinel_verdict_flips;
            out.sentinel_flagged += s.sentinel_flagged;
            out.sentinel_tracked_clients += s.sentinel_tracked_clients;
            out.queue_depth += s.queue_depth;
            out.latency_sum_us += s.latency_sum_us;
            out.batch_size_sum += s.batch_size_sum;
            add_buckets(&mut out.latency_buckets_us, &s.latency_buckets_us);
            add_buckets(&mut out.batch_size_buckets, &s.batch_size_buckets);
            for (stage, buckets) in out.stage_buckets_us.iter_mut().zip(&s.stage_buckets_us) {
                add_buckets(stage, buckets);
            }
            for (dst, src) in out.stage_sums_us.iter_mut().zip(&s.stage_sums_us) {
                *dst += src;
            }
        }
        let lookups = out.cache_hits + out.cache_misses;
        out.cache_hit_rate = if lookups == 0 {
            0.0
        } else {
            out.cache_hits as f64 / lookups as f64
        };
        out.mean_batch_size = if out.batches == 0 {
            0.0
        } else {
            out.rows_scored as f64 / out.batches as f64
        };
        out.p50_latency_us = Histogram::quantile_of_buckets(&out.latency_buckets_us, 0.50);
        out.p99_latency_us = Histogram::quantile_of_buckets(&out.latency_buckets_us, 0.99);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maleva_obs::metrics::HISTOGRAM_BUCKETS;

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let m = Metrics::new();
        let s = m.snapshot(0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.mean_batch_size, 0.0);
        assert!(s.latency_buckets_us.iter().all(|&c| c == 0));
    }

    #[test]
    fn latency_percentiles_track_the_distribution() {
        let m = Metrics::new();
        // 90 fast samples (~8µs) and 10 slow (~1000µs): p50 sits in the
        // fast bucket, p99 in the slow one.
        for _ in 0..90 {
            m.record_latency(Duration::from_micros(8));
        }
        for _ in 0..10 {
            m.record_latency(Duration::from_micros(1000));
        }
        let s = m.snapshot(0);
        assert!(s.p50_latency_us <= 16, "p50 {}", s.p50_latency_us);
        assert!(s.p99_latency_us >= 512, "p99 {}", s.p99_latency_us);
    }

    #[test]
    fn derived_rates_compute() {
        let m = Metrics::new();
        m.cache_hits.add(3);
        m.cache_misses.add(1);
        m.batches.add(2);
        m.rows_scored.add(12);
        let s = m.snapshot(5);
        assert!((s.cache_hit_rate - 0.75).abs() < 1e-12);
        assert!((s.mean_batch_size - 6.0).abs() < 1e-12);
        assert_eq!(s.cache_entries, 5);
    }

    #[test]
    fn sub_microsecond_latencies_land_in_bucket_zero() {
        let m = Metrics::new();
        m.record_latency(Duration::from_nanos(10));
        let s = m.snapshot(0);
        assert_eq!(s.p50_latency_us, 1);
        assert_eq!(s.latency_buckets_us[0], 1);
    }

    #[test]
    fn extreme_latencies_saturate_into_the_top_bucket() {
        let m = Metrics::new();
        // ~2^41 µs — far past the top bucket bound of 2^31 µs. The
        // sample must land in the last bucket, not be dropped.
        m.record_latency(Duration::from_secs(40 * 24 * 3600));
        let s = m.snapshot(0);
        assert_eq!(s.latency_buckets_us[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(
            s.p99_latency_us,
            maleva_obs::metrics::Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1)
        );
        assert_eq!(s.latency_buckets_us.iter().sum::<u64>(), 1);
    }

    #[test]
    fn percentiles_pin_both_extremes_of_a_mixed_distribution() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_latency(Duration::from_nanos(1)); // bucket 0
        }
        m.record_latency(Duration::from_secs(u32::MAX as u64)); // saturates
        let s = m.snapshot(0);
        assert_eq!(s.p50_latency_us, 1); // bucket 0 upper bound
        assert_eq!(
            s.p99_latency_us,
            1 // 99th of 100 samples still in bucket 0
        );
        // The max (p100) lives in the saturated top bucket.
        assert_eq!(s.latency_buckets_us[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn batch_size_distribution_is_tracked() {
        let m = Metrics::new();
        m.record_batch_size(1);
        m.record_batch_size(8);
        m.record_batch_size(8);
        let s = m.snapshot(0);
        assert_eq!(s.batch_size_buckets[1], 1); // [1, 2)
        assert_eq!(s.batch_size_buckets[4], 2); // [8, 16)
    }

    #[test]
    fn stage_histograms_record_in_pipeline_order() {
        let m = Metrics::new();
        m.record_stages(&StageTimes {
            queue_wait: Duration::from_micros(3),
            batch_wait: Duration::from_micros(5),
            cache_lookup: Duration::from_micros(1),
            sentinel_check: Duration::from_micros(2),
            inference: Duration::from_micros(900),
            serialize: Duration::from_micros(7),
        });
        let text = m.render_prometheus(0);
        for stage in maleva_obs::report::STAGES {
            assert!(
                text.contains(&format!("serve_stage_{stage}_us_count 1")),
                "missing {stage} series in {text}"
            );
        }
        // The slow inference sample must land above the fast stages.
        use maleva_obs::metrics::MetricReading;
        match m.registry().read("serve_stage_inference_us") {
            Some(MetricReading::Histogram { sum, count, .. }) => {
                assert_eq!(count, 1);
                assert_eq!(sum, 900);
            }
            other => panic!("unexpected reading {other:?}"),
        }
    }

    #[test]
    fn merge_sums_counters_and_recomputes_derived_values() {
        let a = Metrics::new();
        a.requests.add(10);
        a.cache_hits.add(6);
        a.cache_misses.add(2);
        a.batches.add(2);
        a.rows_scored.add(8);
        a.record_latency(Duration::from_micros(8));
        let b = Metrics::new();
        b.requests.add(5);
        b.cache_misses.add(2);
        b.batches.add(1);
        b.rows_scored.add(4);
        b.record_latency(Duration::from_micros(1000));
        let merged = MetricsSnapshot::merge(&[a.snapshot(3), b.snapshot(1)]);
        assert_eq!(merged.requests, 15);
        assert_eq!(merged.cache_entries, 4);
        assert!((merged.cache_hit_rate - 0.6).abs() < 1e-12);
        assert!((merged.mean_batch_size - 4.0).abs() < 1e-12);
        assert_eq!(merged.latency_buckets_us.iter().sum::<u64>(), 2);
        assert_eq!(merged.latency_sum_us, 1008);
        // Percentiles come off the merged distribution.
        assert!(merged.p50_latency_us <= 16, "{}", merged.p50_latency_us);
        assert!(merged.p99_latency_us >= 512, "{}", merged.p99_latency_us);
        // Merging one snapshot is the identity on the counter sums.
        let solo = MetricsSnapshot::merge(&[a.snapshot(3)]);
        assert_eq!(solo.requests, 10);
        assert_eq!(solo.p50_latency_us, a.snapshot(3).p50_latency_us);
    }

    #[test]
    fn absorb_raises_the_aggregate_to_the_merged_totals_idempotently() {
        let shard = Metrics::new();
        shard.requests.add(7);
        shard.errors.add(2);
        shard.record_latency(Duration::from_micros(100));
        shard.record_batch_size(4);
        shard.record_stages(&StageTimes {
            inference: Duration::from_micros(90),
            ..StageTimes::default()
        });
        let merged = MetricsSnapshot::merge(&[shard.snapshot(2)]);
        let aggregate = Metrics::new();
        aggregate.absorb(&merged);
        aggregate.absorb(&merged); // second absorb must not double-count
        let view = aggregate.snapshot(merged.cache_entries);
        assert_eq!(view.requests, 7);
        assert_eq!(view.errors, 2);
        assert_eq!(view.latency_buckets_us, merged.latency_buckets_us);
        assert_eq!(view.latency_sum_us, 100);
        assert_eq!(view.batch_size_sum, 4);
        assert_eq!(view.stage_sums_us[4], 90); // inference is stage 4
        let text = aggregate.render_prometheus(merged.cache_entries);
        assert!(text.contains("serve_requests_total 7"), "{text}");
        assert!(text.contains("serve_request_latency_us_count 1"), "{text}");
    }

    #[test]
    fn prometheus_rendering_includes_all_series() {
        let m = Metrics::new();
        m.requests.add(7);
        m.record_latency(Duration::from_micros(100));
        m.record_batch_size(4);
        let text = m.render_prometheus(3);
        assert!(
            text.contains("# TYPE serve_requests_total counter"),
            "{text}"
        );
        assert!(text.contains("serve_requests_total 7"), "{text}");
        assert!(text.contains("serve_cache_entries 3"), "{text}");
        assert!(
            text.contains("serve_request_latency_us_bucket{le=\"128\"} 1"),
            "{text}"
        );
        assert!(text.contains("serve_request_latency_us_count 1"), "{text}");
        assert!(text.contains("serve_batch_size_count 1"), "{text}");
    }
}
