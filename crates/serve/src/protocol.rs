//! The wire protocol: newline-delimited JSON, one request and one
//! response per line.
//!
//! Requests:
//!
//! ```text
//! {"features": [c0, c1, ..., c490]}   score one sample (raw API-call counts)
//! {"cmd": "stats"}                    metrics snapshot (JSON)
//! {"cmd": "metrics"}                  Prometheus text exposition, multi-line,
//!                                     terminated by a "# EOF" marker line
//! {"cmd": "shutdown"}                 graceful drain + stop
//! ```
//!
//! Responses:
//!
//! ```text
//! {"score": 0.97, "verdict": "malware", "cached": false, "batch_size": 12}
//! {"stats": {...}}                    see `MetricsSnapshot`
//! {"ok": "shutting down"}
//! {"error": {"kind": "overloaded", "detail": "...", "retryable": true}}
//! ```
//!
//! Counts are validated strictly — finite, non-negative, integral, and
//! at most `u32::MAX` — because the features are API-call counts; any
//! violation yields a typed [`ServeError`], never a panic.

use serde::{Content, Serialize};

use crate::error::ServeError;
use crate::metrics::MetricsSnapshot;

/// Newtype that deserializes into the raw [`Content`] tree, giving the
/// request parser full structural control (the vendored `serde_json`
/// has no `Value` type).
struct JsonValue(Content);

impl<'de> serde::Deserialize<'de> for JsonValue {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.content().map(JsonValue)
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Score one sample given its raw API-call counts.
    Score {
        /// Raw per-API call counts, `dim` entries.
        counts: Vec<u32>,
    },
    /// Return a metrics snapshot as JSON.
    Stats,
    /// Return Prometheus text exposition (multi-line, `# EOF`-terminated).
    Metrics,
    /// Drain in-flight work and stop the server.
    Shutdown,
}

/// Parses one request line against the detector's feature
/// dimensionality.
///
/// # Errors
///
/// Returns the [`ServeError`] that should be sent back on the wire:
/// [`ServeError::MalformedJson`], [`ServeError::UnknownCommand`],
/// [`ServeError::WrongDimension`], or [`ServeError::InvalidFeature`].
pub fn parse_request(line: &str, dim: usize) -> Result<Request, ServeError> {
    let JsonValue(value) = serde_json::from_str(line).map_err(|e| ServeError::MalformedJson {
        detail: e.to_string(),
    })?;
    let Content::Map(entries) = value else {
        return Err(ServeError::UnknownCommand {
            command: format!("non-object request ({})", type_name(&value)),
        });
    };
    if let Some((_, cmd)) = entries.iter().find(|(k, _)| k == "cmd") {
        return match cmd {
            Content::Str(s) if s == "stats" => Ok(Request::Stats),
            Content::Str(s) if s == "metrics" => Ok(Request::Metrics),
            Content::Str(s) if s == "shutdown" => Ok(Request::Shutdown),
            Content::Str(other) => Err(ServeError::UnknownCommand {
                command: other.clone(),
            }),
            other => Err(ServeError::UnknownCommand {
                command: format!("non-string cmd ({})", type_name(other)),
            }),
        };
    }
    let Some((_, features)) = entries.iter().find(|(k, _)| k == "features") else {
        return Err(ServeError::UnknownCommand {
            command: "object with neither \"features\" nor \"cmd\"".to_string(),
        });
    };
    let Content::Seq(values) = features else {
        return Err(ServeError::UnknownCommand {
            command: format!("non-array features ({})", type_name(features)),
        });
    };
    if values.len() != dim {
        return Err(ServeError::WrongDimension {
            expected: dim,
            actual: values.len(),
        });
    }
    let mut counts = Vec::with_capacity(dim);
    for (index, entry) in values.iter().enumerate() {
        counts.push(parse_count(index, entry)?);
    }
    Ok(Request::Score { counts })
}

/// Validates one `features` entry as an API-call count.
fn parse_count(index: usize, entry: &Content) -> Result<u32, ServeError> {
    match *entry {
        Content::U64(v) if v <= u32::MAX as u64 => Ok(v as u32),
        Content::U64(v) => Err(ServeError::InvalidFeature {
            index,
            value: v as f64,
        }),
        Content::I64(v) => Err(ServeError::InvalidFeature {
            index,
            value: v as f64,
        }),
        Content::F64(v) => {
            if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64 {
                Ok(v as u32)
            } else {
                Err(ServeError::InvalidFeature { index, value: v })
            }
        }
        ref other => Err(ServeError::InvalidFeature {
            index,
            value: match other {
                Content::Bool(true) => 1.0,
                _ => f64::NAN,
            },
        }),
    }
}

fn type_name(v: &Content) -> &'static str {
    match v {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
        Content::Str(_) => "string",
        Content::Seq(_) => "array",
        Content::Map(_) => "object",
    }
}

/// The score response body.
#[derive(Debug, Clone, Serialize)]
pub struct ScoreResponse {
    /// Malware confidence in `[0, 1]`.
    pub score: f64,
    /// `"malware"` (score ≥ 0.5) or `"clean"`.
    pub verdict: &'static str,
    /// Whether the score came from the cache (no forward pass ran).
    pub cached: bool,
    /// Rows in the batch that produced this score; `0` for cache hits.
    pub batch_size: usize,
}

impl ScoreResponse {
    /// Builds a response from a score, deriving the verdict.
    pub fn new(score: f64, cached: bool, batch_size: usize) -> Self {
        ScoreResponse {
            score,
            verdict: if score >= 0.5 { "malware" } else { "clean" },
            cached,
            batch_size,
        }
    }
}

/// Encodes a score response line (no trailing newline).
pub fn encode_score(resp: &ScoreResponse) -> String {
    serde_json::to_string(resp).unwrap_or_else(|_| encode_internal_error("score encoding"))
}

/// Encodes a stats response line.
pub fn encode_stats(snapshot: &MetricsSnapshot) -> String {
    #[derive(Serialize)]
    struct Wrapper<'a> {
        stats: &'a MetricsSnapshot,
    }
    serde_json::to_string(&Wrapper { stats: snapshot })
        .unwrap_or_else(|_| encode_internal_error("stats encoding"))
}

/// Encodes the shutdown acknowledgement line.
pub fn encode_shutdown_ack() -> String {
    "{\"ok\":\"shutting down\"}".to_string()
}

/// Encodes an error response line.
pub fn encode_error(err: &ServeError) -> String {
    #[derive(Serialize)]
    struct Body<'a> {
        kind: &'static str,
        detail: &'a str,
        retryable: bool,
    }
    #[derive(Serialize)]
    struct Wrapper<'a> {
        error: Body<'a>,
    }
    let detail = err.to_string();
    serde_json::to_string(&Wrapper {
        error: Body {
            kind: err.kind(),
            detail: &detail,
            retryable: err.is_retryable(),
        },
    })
    .unwrap_or_else(|_| encode_internal_error("error encoding"))
}

fn encode_internal_error(what: &str) -> String {
    format!(
        "{{\"error\":{{\"kind\":\"internal\",\"detail\":\"{what} failed\",\"retryable\":false}}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_score_request() {
        let req = parse_request("{\"features\": [0, 3, 12]}", 3).unwrap();
        assert_eq!(
            req,
            Request::Score {
                counts: vec![0, 3, 12]
            }
        );
    }

    #[test]
    fn parses_commands() {
        assert_eq!(
            parse_request("{\"cmd\": \"stats\"}", 3).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request("{\"cmd\": \"metrics\"}", 3).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request("{\"cmd\": \"shutdown\"}", 3).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_json() {
        let err = parse_request("{oops", 3).unwrap_err();
        assert_eq!(err.kind(), "malformed_json");
        // Literal NaN is not valid JSON either.
        let err = parse_request("{\"features\": [NaN, 0, 0]}", 3).unwrap_err();
        assert_eq!(err.kind(), "malformed_json");
    }

    #[test]
    fn rejects_unknown_shapes() {
        for line in [
            "42",
            "[1,2,3]",
            "{\"cmd\": \"reboot\"}",
            "{\"cmd\": 7}",
            "{\"featurez\": [1]}",
            "{\"features\": \"yes\"}",
        ] {
            assert_eq!(
                parse_request(line, 3).unwrap_err().kind(),
                "unknown_command",
                "{line}"
            );
        }
    }

    #[test]
    fn rejects_wrong_dimension() {
        assert_eq!(
            parse_request("{\"features\": [1, 2]}", 3).unwrap_err(),
            ServeError::WrongDimension {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn rejects_invalid_counts() {
        for line in [
            "{\"features\": [1, -2, 3]}",
            "{\"features\": [1, 2.5, 3]}",
            "{\"features\": [1, 1e300, 3]}",
            "{\"features\": [1, null, 3]}",
            "{\"features\": [1, \"7\", 3]}",
        ] {
            let err = parse_request(line, 3).unwrap_err();
            assert_eq!(err.kind(), "invalid_feature", "{line}");
            assert_eq!(
                match err {
                    ServeError::InvalidFeature { index, .. } => index,
                    other => panic!("unexpected {other:?}"),
                },
                1
            );
        }
    }

    #[test]
    fn score_response_derives_verdict() {
        let r = ScoreResponse::new(0.73, false, 4);
        assert_eq!(r.verdict, "malware");
        let r = ScoreResponse::new(0.21, true, 0);
        assert_eq!(r.verdict, "clean");
        let line = encode_score(&ScoreResponse::new(0.5, false, 1));
        assert!(line.contains("\"verdict\":\"malware\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn error_encoding_round_trips_kind() {
        let line = encode_error(&ServeError::Overloaded { capacity: 64 });
        let JsonValue(v) = serde_json::from_str(&line).unwrap();
        let Content::Map(top) = v else {
            panic!("not an object")
        };
        let Some((_, Content::Map(body))) = top.iter().find(|(k, _)| k == "error") else {
            panic!("no error body");
        };
        assert!(body
            .iter()
            .any(|(k, v)| k == "kind" && *v == Content::Str("overloaded".into())));
        assert!(body
            .iter()
            .any(|(k, v)| k == "retryable" && *v == Content::Bool(true)));
    }
}
