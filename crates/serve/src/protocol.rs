//! The wire protocol: newline-delimited JSON, one request and one
//! response per line.
//!
//! Requests:
//!
//! ```text
//! {"features": [c0, c1, ..., c490]}   score one sample (raw API-call counts)
//! {"features": [...], "client_id": "tenant-a"}
//!                                     same, with an explicit client identity
//!                                     for the sentinel (defaults to the
//!                                     connection's peer address)
//! {"features": [...], "trace_id": 91, "span_id": 92}
//!                                     same, with wire trace context: the
//!                                     server tags its request/batch spans
//!                                     with the caller's trace so one logical
//!                                     request is followable client → server
//!                                     in a single trace.jsonl (ids are
//!                                     nonzero u64s minted by the client)
//! {"cmd": "stats"}                    metrics snapshot (JSON)
//! {"cmd": "metrics"}                  Prometheus text exposition, multi-line,
//!                                     terminated by a "# EOF" marker line
//! {"cmd": "health"}                   queue depth, drain state, fault counters
//! {"cmd": "sentinel"}                 per-client query-pattern state (JSON)
//! {"cmd": "slo"}                      evaluate SLO burn-rate alarms (JSON)
//! {"cmd": "reload", "path": "..."}    hot-swap the model from a pipeline or
//!                                     network JSON export, or a checkpoint
//!                                     directory; atomic at a batch boundary
//! {"cmd": "shutdown"}                 graceful drain + stop
//! ```
//!
//! Responses:
//!
//! ```text
//! {"score": 0.97, "verdict": "malware", "cached": false, "batch_size": 12}
//!                                     plus "generation": N after a reload
//!                                     (omitted while serving the boot model)
//! {"stats": {...}}                    see `MetricsSnapshot`; merged across
//!                                     shards, with a "shards" array of the
//!                                     same per-shard snapshots it was merged
//!                                     from
//! {"health": {"status": "ok", "queue_depth": 3, ...}}
//! {"sentinel": {"enabled": true, "tracked_clients": 2, ...}}
//! {"slo": {"evaluated_at_ms": 1200, "alarms": [...]}}
//! {"reload": {"generation": 1, "params": 31000}}
//! {"ok": "shutting down"}
//! {"error": {"kind": "overloaded", "detail": "...", "retryable": true,
//!            "retry_after_ms": 12}}
//! ```
//!
//! `retry_after_ms` appears only on `overloaded` and `throttled`
//! errors; every other error body carries exactly `kind`, `detail`,
//! and `retryable` (the full contract table lives in DESIGN.md §12 and
//! the README protocol reference).
//!
//! Counts are validated strictly — finite, non-negative, integral, and
//! at most `u32::MAX` — because the features are API-call counts; any
//! violation yields a typed [`ServeError`], never a panic.

use serde::{Content, Serialize};

use crate::error::ServeError;
use crate::metrics::MetricsSnapshot;
use crate::sentinel::SentinelReport;
use crate::slo::SloReport;

/// Longest accepted `client_id`, in bytes.
const MAX_CLIENT_ID_BYTES: usize = 128;

/// Wire trace context carried on a score request.
///
/// The client mints both ids: `trace_id` is stable across retries of
/// one logical request, `span_id` identifies the individual attempt.
/// The server tags its `serve.request` span and per-job batch events
/// with these ids so a request is followable client → queue → batch →
/// inference → response in one `trace.jsonl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The logical request's trace id (nonzero, stable across retries).
    pub trace_id: u64,
    /// The caller's span id for this attempt (`0` when not supplied).
    pub span_id: u64,
}

/// Newtype that deserializes into the raw [`Content`] tree, giving the
/// request parser full structural control (the vendored `serde_json`
/// has no `Value` type).
struct JsonValue(Content);

impl<'de> serde::Deserialize<'de> for JsonValue {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.content().map(JsonValue)
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Score one sample given its raw API-call counts.
    Score {
        /// Raw per-API call counts, `dim` entries.
        counts: Vec<u32>,
        /// The caller's self-declared identity for sentinel tracking;
        /// `None` falls back to the connection's peer address.
        client_id: Option<String>,
        /// Wire trace context, when the caller propagated one.
        trace: Option<TraceContext>,
    },
    /// Return a metrics snapshot as JSON.
    Stats,
    /// Return Prometheus text exposition (multi-line, `# EOF`-terminated).
    Metrics,
    /// Return queue depth, drain state, and fault counters as JSON.
    Health,
    /// Return the sentinel's per-client query-pattern state as JSON.
    Sentinel,
    /// Evaluate the SLO burn-rate alarms and return their state as JSON.
    Slo,
    /// Hot-swap the model from the artifact at `path`.
    Reload {
        /// Filesystem path to a pipeline/network JSON export or a
        /// checkpoint directory.
        path: String,
    },
    /// Drain in-flight work and stop the server.
    Shutdown,
}

/// Parses one request line against the detector's feature
/// dimensionality.
///
/// # Errors
///
/// Returns the [`ServeError`] that should be sent back on the wire:
/// [`ServeError::MalformedJson`], [`ServeError::UnknownCommand`],
/// [`ServeError::WrongDimension`], or [`ServeError::InvalidFeature`].
pub fn parse_request(line: &str, dim: usize) -> Result<Request, ServeError> {
    let JsonValue(value) = serde_json::from_str(line).map_err(|e| ServeError::MalformedJson {
        detail: e.to_string(),
    })?;
    let Content::Map(entries) = value else {
        return Err(ServeError::UnknownCommand {
            command: format!("non-object request ({})", type_name(&value)),
        });
    };
    if let Some((_, cmd)) = entries.iter().find(|(k, _)| k == "cmd") {
        return match cmd {
            Content::Str(s) if s == "stats" => Ok(Request::Stats),
            Content::Str(s) if s == "metrics" => Ok(Request::Metrics),
            Content::Str(s) if s == "health" => Ok(Request::Health),
            Content::Str(s) if s == "sentinel" => Ok(Request::Sentinel),
            Content::Str(s) if s == "slo" => Ok(Request::Slo),
            Content::Str(s) if s == "reload" => match entries.iter().find(|(k, _)| k == "path") {
                Some((_, Content::Str(path))) if !path.is_empty() => {
                    Ok(Request::Reload { path: path.clone() })
                }
                Some((_, other)) => Err(ServeError::UnknownCommand {
                    command: format!(
                        "reload path must be a non-empty string ({})",
                        type_name(other)
                    ),
                }),
                None => Err(ServeError::UnknownCommand {
                    command: "reload requires a \"path\"".to_string(),
                }),
            },
            Content::Str(s) if s == "shutdown" => Ok(Request::Shutdown),
            Content::Str(other) => Err(ServeError::UnknownCommand {
                command: other.clone(),
            }),
            other => Err(ServeError::UnknownCommand {
                command: format!("non-string cmd ({})", type_name(other)),
            }),
        };
    }
    let Some((_, features)) = entries.iter().find(|(k, _)| k == "features") else {
        return Err(ServeError::UnknownCommand {
            command: "object with neither \"features\" nor \"cmd\"".to_string(),
        });
    };
    let Content::Seq(values) = features else {
        return Err(ServeError::UnknownCommand {
            command: format!("non-array features ({})", type_name(features)),
        });
    };
    if values.len() != dim {
        return Err(ServeError::WrongDimension {
            expected: dim,
            actual: values.len(),
        });
    }
    let mut counts = Vec::with_capacity(dim);
    for (index, entry) in values.iter().enumerate() {
        counts.push(parse_count(index, entry)?);
    }
    let client_id = match entries.iter().find(|(k, _)| k == "client_id") {
        None => None,
        Some((_, Content::Str(s))) if !s.is_empty() && s.len() <= MAX_CLIENT_ID_BYTES => {
            Some(s.clone())
        }
        Some((_, Content::Str(_))) => {
            return Err(ServeError::UnknownCommand {
                command: format!("client_id must be 1..={MAX_CLIENT_ID_BYTES} bytes"),
            });
        }
        Some((_, other)) => {
            return Err(ServeError::UnknownCommand {
                command: format!("non-string client_id ({})", type_name(other)),
            });
        }
    };
    let trace = match parse_trace_field(&entries, "trace_id")? {
        None => None,
        Some(trace_id) => Some(TraceContext {
            trace_id,
            span_id: parse_trace_field(&entries, "span_id")?.unwrap_or(0),
        }),
    };
    Ok(Request::Score {
        counts,
        client_id,
        trace,
    })
}

/// Reads an optional trace-context id (`trace_id` / `span_id`): absent
/// is `None`; present must be a nonzero unsigned integer.
fn parse_trace_field(entries: &[(String, Content)], key: &str) -> Result<Option<u64>, ServeError> {
    match entries.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Content::U64(v))) if *v > 0 => Ok(Some(*v)),
        Some((_, other)) => Err(ServeError::UnknownCommand {
            command: format!("{key} must be a nonzero u64 ({})", type_name(other)),
        }),
    }
}

/// Validates one `features` entry as an API-call count.
fn parse_count(index: usize, entry: &Content) -> Result<u32, ServeError> {
    match *entry {
        Content::U64(v) if v <= u32::MAX as u64 => Ok(v as u32),
        Content::U64(v) => Err(ServeError::InvalidFeature {
            index,
            value: v as f64,
        }),
        Content::I64(v) => Err(ServeError::InvalidFeature {
            index,
            value: v as f64,
        }),
        Content::F64(v) => {
            if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64 {
                Ok(v as u32)
            } else {
                Err(ServeError::InvalidFeature { index, value: v })
            }
        }
        ref other => Err(ServeError::InvalidFeature {
            index,
            value: match other {
                Content::Bool(true) => 1.0,
                _ => f64::NAN,
            },
        }),
    }
}

fn type_name(v: &Content) -> &'static str {
    match v {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
        Content::Str(_) => "string",
        Content::Seq(_) => "array",
        Content::Map(_) => "object",
    }
}

/// The score response body.
#[derive(Debug, Clone)]
pub struct ScoreResponse {
    /// Malware confidence in `[0, 1]`.
    pub score: f64,
    /// `"malware"` (score ≥ 0.5) or `"clean"`.
    pub verdict: &'static str,
    /// Whether the score came from the cache (no forward pass ran).
    pub cached: bool,
    /// Rows in the batch that produced this score; `0` for cache hits.
    pub batch_size: usize,
    /// Generation of the model that produced the score (0 = boot
    /// model; omitted on the wire while 0 so pre-reload responses are
    /// byte-identical to the previous protocol version).
    pub generation: u64,
}

impl ScoreResponse {
    /// Builds a response from a score, deriving the verdict. The model
    /// generation defaults to 0 (boot model); see
    /// [`ScoreResponse::with_generation`].
    pub fn new(score: f64, cached: bool, batch_size: usize) -> Self {
        ScoreResponse {
            score,
            verdict: if score >= 0.5 { "malware" } else { "clean" },
            cached,
            batch_size,
            generation: 0,
        }
    }

    /// Stamps the model generation that produced the score.
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }
}

impl Serialize for ScoreResponse {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("score".to_string(), Content::F64(self.score)),
            (
                "verdict".to_string(),
                Content::Str(self.verdict.to_string()),
            ),
            ("cached".to_string(), Content::Bool(self.cached)),
            (
                "batch_size".to_string(),
                Content::U64(self.batch_size as u64),
            ),
        ];
        if self.generation > 0 {
            fields.push(("generation".to_string(), Content::U64(self.generation)));
        }
        Content::Map(fields)
    }
}

/// Encodes a score response line (no trailing newline).
pub fn encode_score(resp: &ScoreResponse) -> String {
    serde_json::to_string(resp).unwrap_or_else(|_| encode_internal_error("score encoding"))
}

/// Encodes a stats response line.
pub fn encode_stats(snapshot: &MetricsSnapshot) -> String {
    #[derive(Serialize)]
    struct Wrapper<'a> {
        stats: &'a MetricsSnapshot,
    }
    serde_json::to_string(&Wrapper { stats: snapshot })
        .unwrap_or_else(|_| encode_internal_error("stats encoding"))
}

/// Encodes a stats response line carrying both the merged snapshot and
/// the per-shard snapshots it was merged from (appended as a `shards`
/// array inside the `stats` body). Callers must derive `merged` from
/// the very same `shards` vector so the wire body is
/// snapshot-consistent: the merged counters always equal the sums of
/// the per-shard ones, even when taken mid-drain.
pub fn encode_stats_with_shards(merged: &MetricsSnapshot, shards: &[MetricsSnapshot]) -> String {
    struct Raw(Content);
    impl Serialize for Raw {
        fn to_content(&self) -> Content {
            self.0.clone()
        }
    }
    let Content::Map(mut body) = merged.to_content() else {
        return encode_internal_error("stats encoding");
    };
    body.push((
        "shards".to_string(),
        Content::Seq(shards.iter().map(Serialize::to_content).collect()),
    ));
    #[derive(Serialize)]
    struct Wrapper {
        stats: Raw,
    }
    serde_json::to_string(&Wrapper {
        stats: Raw(Content::Map(body)),
    })
    .unwrap_or_else(|_| encode_internal_error("stats encoding"))
}

/// Encodes a reload acknowledgement line.
pub fn encode_reload_ack(generation: u64, params: usize) -> String {
    format!("{{\"reload\":{{\"generation\":{generation},\"params\":{params}}}}}")
}

/// Encodes the shutdown acknowledgement line.
pub fn encode_shutdown_ack() -> String {
    "{\"ok\":\"shutting down\"}".to_string()
}

/// The body of a `{"cmd": "health"}` response.
#[derive(Debug, Clone, Serialize)]
pub struct HealthReport {
    /// `"ok"` when accepting work, `"draining"` during shutdown.
    pub status: &'static str,
    /// Whether a drain is in progress.
    pub draining: bool,
    /// Jobs currently waiting in the scoring queue.
    pub queue_depth: u64,
    /// Queue depth at which admission control starts shedding.
    pub shed_depth: u64,
    /// The per-request deadline, in milliseconds.
    pub deadline_ms: u64,
    /// Batches whose forward pass panicked and were re-scored per row.
    pub scorer_panics: u64,
    /// Rows that failed even the per-row fallback (`internal` replies).
    pub row_failures: u64,
    /// Requests shed or rejected with `overloaded`.
    pub overloaded: u64,
    /// Requests answered with `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Generation of the model currently serving (0 = boot model).
    pub model_generation: u64,
    /// Per-site injected-fault counters, `(site, fired)` in stable
    /// order; empty when fault injection is disabled.
    pub faults: Vec<(String, u64)>,
}

/// Encodes a health response line.
pub fn encode_health(report: &HealthReport) -> String {
    #[derive(Serialize)]
    struct Wrapper<'a> {
        health: &'a HealthReport,
    }
    serde_json::to_string(&Wrapper { health: report })
        .unwrap_or_else(|_| encode_internal_error("health encoding"))
}

/// Encodes a sentinel inspection response line.
pub fn encode_sentinel(report: &SentinelReport) -> String {
    #[derive(Serialize)]
    struct Wrapper<'a> {
        sentinel: &'a SentinelReport,
    }
    serde_json::to_string(&Wrapper { sentinel: report })
        .unwrap_or_else(|_| encode_internal_error("sentinel encoding"))
}

/// Encodes an SLO alarm-state response line.
pub fn encode_slo(report: &SloReport) -> String {
    #[derive(Serialize)]
    struct Wrapper<'a> {
        slo: &'a SloReport,
    }
    serde_json::to_string(&Wrapper { slo: report })
        .unwrap_or_else(|_| encode_internal_error("slo encoding"))
}

/// Encodes an error response line. `retry_after_ms` is included only
/// when the error carries a hint (`overloaded`).
pub fn encode_error(err: &ServeError) -> String {
    struct Body<'a> {
        kind: &'static str,
        detail: &'a str,
        retryable: bool,
        retry_after_ms: Option<u64>,
    }
    impl serde::Serialize for Body<'_> {
        fn to_content(&self) -> Content {
            let mut fields = vec![
                ("kind".to_string(), Content::Str(self.kind.to_string())),
                ("detail".to_string(), Content::Str(self.detail.to_string())),
                ("retryable".to_string(), Content::Bool(self.retryable)),
            ];
            if let Some(ms) = self.retry_after_ms {
                fields.push(("retry_after_ms".to_string(), Content::U64(ms)));
            }
            Content::Map(fields)
        }
    }
    #[derive(Serialize)]
    struct Wrapper<'a> {
        error: Body<'a>,
    }
    let detail = err.to_string();
    serde_json::to_string(&Wrapper {
        error: Body {
            kind: err.kind(),
            detail: &detail,
            retryable: err.is_retryable(),
            retry_after_ms: err.retry_after_ms(),
        },
    })
    .unwrap_or_else(|_| encode_internal_error("error encoding"))
}

fn encode_internal_error(what: &str) -> String {
    format!(
        "{{\"error\":{{\"kind\":\"internal\",\"detail\":\"{what} failed\",\"retryable\":false}}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_score_request() {
        let req = parse_request("{\"features\": [0, 3, 12]}", 3).unwrap();
        assert_eq!(
            req,
            Request::Score {
                counts: vec![0, 3, 12],
                client_id: None,
                trace: None,
            }
        );
    }

    #[test]
    fn parses_and_validates_trace_context() {
        let req = parse_request(
            "{\"features\": [0, 3, 12], \"trace_id\": 91, \"span_id\": 92}",
            3,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Score {
                counts: vec![0, 3, 12],
                client_id: None,
                trace: Some(TraceContext {
                    trace_id: 91,
                    span_id: 92,
                }),
            }
        );
        // A lone trace_id is accepted; span_id defaults to 0 (absent).
        let req = parse_request("{\"features\": [0, 3, 12], \"trace_id\": 7}", 3).unwrap();
        assert_eq!(
            req,
            Request::Score {
                counts: vec![0, 3, 12],
                client_id: None,
                trace: Some(TraceContext {
                    trace_id: 7,
                    span_id: 0,
                }),
            }
        );
        // A span_id without a trace_id is ignored (no context to join).
        let req = parse_request("{\"features\": [0, 3, 12], \"span_id\": 5}", 3).unwrap();
        assert!(matches!(req, Request::Score { trace: None, .. }));
        // Zero, negative, fractional, or non-numeric ids are shape errors.
        for line in [
            "{\"features\": [0, 3, 12], \"trace_id\": 0}",
            "{\"features\": [0, 3, 12], \"trace_id\": -4}",
            "{\"features\": [0, 3, 12], \"trace_id\": 1.5}",
            "{\"features\": [0, 3, 12], \"trace_id\": \"t\"}",
            "{\"features\": [0, 3, 12], \"trace_id\": 3, \"span_id\": 0}",
        ] {
            assert_eq!(
                parse_request(line, 3).unwrap_err().kind(),
                "unknown_command",
                "{line}"
            );
        }
    }

    #[test]
    fn parses_and_validates_client_id() {
        let req = parse_request("{\"features\": [0, 3, 12], \"client_id\": \"t-1\"}", 3).unwrap();
        assert_eq!(
            req,
            Request::Score {
                counts: vec![0, 3, 12],
                client_id: Some("t-1".to_string()),
                trace: None,
            }
        );
        // Empty, oversized, or non-string identities are shape errors.
        let long = "x".repeat(129);
        for line in [
            "{\"features\": [0, 3, 12], \"client_id\": \"\"}".to_string(),
            format!("{{\"features\": [0, 3, 12], \"client_id\": \"{long}\"}}"),
            "{\"features\": [0, 3, 12], \"client_id\": 7}".to_string(),
        ] {
            assert_eq!(
                parse_request(&line, 3).unwrap_err().kind(),
                "unknown_command",
                "{line}"
            );
        }
    }

    #[test]
    fn parses_commands() {
        assert_eq!(
            parse_request("{\"cmd\": \"stats\"}", 3).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request("{\"cmd\": \"metrics\"}", 3).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request("{\"cmd\": \"health\"}", 3).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request("{\"cmd\": \"sentinel\"}", 3).unwrap(),
            Request::Sentinel
        );
        assert_eq!(
            parse_request("{\"cmd\": \"slo\"}", 3).unwrap(),
            Request::Slo
        );
        assert_eq!(
            parse_request("{\"cmd\": \"shutdown\"}", 3).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_json() {
        let err = parse_request("{oops", 3).unwrap_err();
        assert_eq!(err.kind(), "malformed_json");
        // Literal NaN is not valid JSON either.
        let err = parse_request("{\"features\": [NaN, 0, 0]}", 3).unwrap_err();
        assert_eq!(err.kind(), "malformed_json");
    }

    #[test]
    fn rejects_unknown_shapes() {
        for line in [
            "42",
            "[1,2,3]",
            "{\"cmd\": \"reboot\"}",
            "{\"cmd\": 7}",
            "{\"featurez\": [1]}",
            "{\"features\": \"yes\"}",
        ] {
            assert_eq!(
                parse_request(line, 3).unwrap_err().kind(),
                "unknown_command",
                "{line}"
            );
        }
    }

    #[test]
    fn rejects_wrong_dimension() {
        assert_eq!(
            parse_request("{\"features\": [1, 2]}", 3).unwrap_err(),
            ServeError::WrongDimension {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn rejects_invalid_counts() {
        for line in [
            "{\"features\": [1, -2, 3]}",
            "{\"features\": [1, 2.5, 3]}",
            "{\"features\": [1, 1e300, 3]}",
            "{\"features\": [1, null, 3]}",
            "{\"features\": [1, \"7\", 3]}",
        ] {
            let err = parse_request(line, 3).unwrap_err();
            assert_eq!(err.kind(), "invalid_feature", "{line}");
            assert_eq!(
                match err {
                    ServeError::InvalidFeature { index, .. } => index,
                    other => panic!("unexpected {other:?}"),
                },
                1
            );
        }
    }

    #[test]
    fn score_response_derives_verdict() {
        let r = ScoreResponse::new(0.73, false, 4);
        assert_eq!(r.verdict, "malware");
        let r = ScoreResponse::new(0.21, true, 0);
        assert_eq!(r.verdict, "clean");
        let line = encode_score(&ScoreResponse::new(0.5, false, 1));
        assert!(line.contains("\"verdict\":\"malware\""));
        assert!(!line.contains('\n'));
    }

    fn error_body(line: &str) -> Vec<(String, Content)> {
        let JsonValue(v) = serde_json::from_str(line).unwrap();
        let Content::Map(top) = v else {
            panic!("not an object")
        };
        let Some((_, Content::Map(body))) = top.into_iter().find(|(k, _)| k == "error") else {
            panic!("no error body");
        };
        body
    }

    #[test]
    fn error_encoding_round_trips_kind_and_retry_hint() {
        let line = encode_error(&ServeError::Overloaded {
            capacity: 64,
            retry_after_ms: 12,
        });
        let body = error_body(&line);
        assert!(body
            .iter()
            .any(|(k, v)| k == "kind" && *v == Content::Str("overloaded".into())));
        assert!(body
            .iter()
            .any(|(k, v)| k == "retryable" && *v == Content::Bool(true)));
        assert!(body
            .iter()
            .any(|(k, v)| k == "retry_after_ms" && *v == Content::U64(12)));
    }

    #[test]
    fn only_overloaded_and_throttled_carry_retry_after_ms() {
        for err in [
            ServeError::DeadlineExceeded { deadline_ms: 100 },
            ServeError::ShuttingDown,
            ServeError::MalformedJson { detail: "x".into() },
        ] {
            let body = error_body(&encode_error(&err));
            assert!(
                !body.iter().any(|(k, _)| k == "retry_after_ms"),
                "{} should not carry retry_after_ms",
                err.kind()
            );
        }
        let body = error_body(&encode_error(&ServeError::Throttled { retry_after_ms: 25 }));
        assert!(body
            .iter()
            .any(|(k, v)| k == "kind" && *v == Content::Str("throttled".into())));
        assert!(body
            .iter()
            .any(|(k, v)| k == "retryable" && *v == Content::Bool(true)));
        assert!(body
            .iter()
            .any(|(k, v)| k == "retry_after_ms" && *v == Content::U64(25)));
    }

    #[test]
    fn sentinel_report_encodes_under_a_sentinel_key() {
        let line = encode_sentinel(&SentinelReport {
            enabled: true,
            action: "throttle".to_string(),
            tracked_clients: 1,
            flagged_clients: 1,
            clients: vec![crate::sentinel::SentinelClientReport {
                client_id: "attacker".to_string(),
                queries: 40,
                near_duplicates: 30,
                verdict_flips: 5,
                window_near_duplicates: 12,
                window_verdict_flips: 3,
                flagged: true,
                flagged_at_query: 20,
                throttled: 7,
                poisoned: 0,
                observed_rps: 123.4,
            }],
        });
        assert!(line.starts_with("{\"sentinel\":{"), "{line}");
        assert!(line.contains("\"flagged_clients\":1"), "{line}");
        assert!(line.contains("\"client_id\":\"attacker\""), "{line}");
        assert!(line.contains("\"flagged_at_query\":20"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn slo_report_encodes_under_an_slo_key() {
        let line = encode_slo(&SloReport {
            evaluated_at_ms: 1200,
            alarms: vec![crate::slo::SloAlarmReport {
                name: "request_p99_latency".to_string(),
                firing: true,
                changed: false,
                windows: vec![crate::slo::SloWindowReport {
                    window_ms: 60_000,
                    max_burn_rate: 14.0,
                    burn_rate: 20.5,
                    covered: true,
                    bad: 41,
                    total: 200,
                }],
            }],
        });
        assert!(line.starts_with("{\"slo\":{"), "{line}");
        assert!(line.contains("\"evaluated_at_ms\":1200"), "{line}");
        assert!(line.contains("\"name\":\"request_p99_latency\""), "{line}");
        assert!(line.contains("\"firing\":true"), "{line}");
        assert!(line.contains("\"window_ms\":60000"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn health_encoding_includes_queue_and_fault_state() {
        let line = encode_health(&HealthReport {
            status: "ok",
            draining: false,
            queue_depth: 3,
            shed_depth: 48,
            deadline_ms: 30_000,
            scorer_panics: 1,
            row_failures: 0,
            overloaded: 2,
            deadline_exceeded: 0,
            model_generation: 4,
            faults: vec![("batch_panic".to_string(), 1)],
        });
        assert!(line.starts_with("{\"health\":{"), "{line}");
        assert!(line.contains("\"queue_depth\":3"), "{line}");
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        assert!(line.contains("\"scorer_panics\":1"), "{line}");
        assert!(line.contains("\"model_generation\":4"), "{line}");
        assert!(line.contains("batch_panic"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn parses_and_validates_reload() {
        assert_eq!(
            parse_request("{\"cmd\": \"reload\", \"path\": \"/tmp/m.json\"}", 3).unwrap(),
            Request::Reload {
                path: "/tmp/m.json".to_string()
            }
        );
        for line in [
            "{\"cmd\": \"reload\"}",
            "{\"cmd\": \"reload\", \"path\": \"\"}",
            "{\"cmd\": \"reload\", \"path\": 7}",
        ] {
            assert_eq!(
                parse_request(line, 3).unwrap_err().kind(),
                "unknown_command",
                "{line}"
            );
        }
    }

    #[test]
    fn score_encoding_carries_generation_only_after_a_reload() {
        let line = encode_score(&ScoreResponse::new(0.75, false, 4));
        assert!(line.starts_with("{\"score\":"), "{line}");
        assert!(!line.contains("generation"), "{line}");
        let line = encode_score(&ScoreResponse::new(0.75, false, 4).with_generation(2));
        assert!(line.starts_with("{\"score\":"), "{line}");
        assert!(line.ends_with(",\"generation\":2}"), "{line}");
    }

    #[test]
    fn reload_ack_encodes_generation_and_params() {
        assert_eq!(
            encode_reload_ack(3, 31_000),
            "{\"reload\":{\"generation\":3,\"params\":31000}}"
        );
    }

    #[test]
    fn stats_with_shards_appends_the_per_shard_array() {
        let merged = MetricsSnapshot::default();
        let shards = vec![MetricsSnapshot::default(), MetricsSnapshot::default()];
        let line = encode_stats_with_shards(&merged, &shards);
        assert!(line.starts_with("{\"stats\":{"), "{line}");
        assert!(line.contains("\"shards\":[{"), "{line}");
        // The merged body comes first, shards last, one line.
        assert!(!line.contains('\n'));
        let JsonValue(v) = serde_json::from_str(&line).unwrap();
        let Content::Map(top) = v else {
            panic!("not an object")
        };
        let Some((_, Content::Map(stats))) = top.into_iter().find(|(k, _)| k == "stats") else {
            panic!("no stats body");
        };
        let Some((_, Content::Seq(entries))) = stats.iter().find(|(k, _)| k == "shards") else {
            panic!("no shards array");
        };
        assert_eq!(entries.len(), 2);
    }
}
