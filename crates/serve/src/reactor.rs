//! Minimal std-only readiness layer for the shard event loops.
//!
//! Each shard owns one [`Poller`] and blocks in [`Poller::poll`] until a
//! pinned connection turns readable, its [`Waker`] is poked (new
//! connection handed over by the acceptor, shutdown requested), or the
//! timeout lapses (deadline bookkeeping). On Linux this is a thin safe
//! wrapper over `poll(2)`; elsewhere a portable fallback reports every
//! source ready after a short bounded wait, which is correct (if less
//! efficient) because all connection I/O is non-blocking and handlers
//! tolerate spurious readiness.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// What a shard wants to hear about for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when the source has bytes to read (or hung up).
    Readable,
    /// Wake when the source can accept writes without blocking.
    Writable,
}

/// One readiness fact produced by [`Poller::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen token identifying the source (shards use the
    /// index of the connection in their table at poll time).
    pub token: usize,
    /// Bytes are readable, or the peer hung up (a subsequent read
    /// observes EOF/reset — the handler distinguishes).
    pub readable: bool,
    /// Writes would make progress.
    pub writable: bool,
}

/// Wakes a [`Poller`] blocked in `poll` from another thread.
///
/// Backed by the write half of a `UnixStream` pair whose read half the
/// poller watches alongside the registered sources. Cloning is cheap
/// (`Arc`); wakes are idempotent and never block.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Nudges the owning poller. Errors are deliberately ignored: a
    /// full pipe means a wake is already pending, a closed pipe means
    /// the poller is gone and there is nothing left to wake.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

/// Per-shard readiness selector. Not `Sync`: exactly one shard thread
/// drives it, with cross-thread signalling via the paired [`Waker`].
pub struct Poller {
    wake_rx: UnixStream,
}

impl Poller {
    /// Builds a poller and its waker.
    pub fn new() -> std::io::Result<(Poller, Waker)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Poller { wake_rx: rx }, Waker { tx: Arc::new(tx) }))
    }

    /// Blocks until at least one source is ready, the waker fires, or
    /// `timeout` lapses (`None` waits indefinitely). Ready sources are
    /// appended to `events` as `(token, readable, writable)` facts;
    /// wake-ups drain the internal pipe and produce no event. Returns
    /// the number of events appended.
    ///
    /// Spurious readiness is allowed: callers must use non-blocking
    /// I/O on the sources and treat `WouldBlock` as "not actually
    /// ready yet".
    pub fn poll(
        &mut self,
        sources: &[(usize, &TcpStream, Interest)],
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> std::io::Result<usize> {
        events.clear();
        let n = sys::poll_impl(&self.wake_rx, sources, timeout, events)?;
        self.drain_wakes();
        Ok(n)
    }

    fn drain_wakes(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Poller")
    }
}

/// Blocks the calling thread until `stream` is writable or `timeout`
/// lapses. Returns `true` if writable. Used by the blocking-style
/// response writer when a non-blocking write returns `WouldBlock`.
pub fn wait_writable(stream: &TcpStream, timeout: Duration) -> std::io::Result<bool> {
    sys::wait_writable_impl(stream, timeout)
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    //! Safe wrapper over `poll(2)`. The only unsafe in the crate lives
    //! here; the FFI signature matches the Linux/Android ABI (`nfds_t`
    //! is `c_ulong` there — not true on e.g. Darwin, which takes the
    //! portable fallback instead).
    #![allow(unsafe_code)]

    use std::net::TcpStream;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    use super::{Event, Interest};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    fn timeout_ms(timeout: Option<Duration>) -> c_int {
        match timeout {
            // poll(2) takes i32 milliseconds; round up so a 100µs
            // deadline does not busy-spin at timeout 0.
            Some(t) => {
                let ms = t.as_millis().min(c_int::MAX as u128) as c_int;
                if ms == 0 && !t.is_zero() {
                    1
                } else {
                    ms
                }
            }
            None => -1,
        }
    }

    pub(super) fn poll_impl(
        wake_rx: &UnixStream,
        sources: &[(usize, &TcpStream, Interest)],
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> std::io::Result<usize> {
        let mut fds: Vec<PollFd> = Vec::with_capacity(sources.len() + 1);
        fds.push(PollFd {
            fd: wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for (_, stream, interest) in sources {
            fds.push(PollFd {
                fd: stream.as_raw_fd(),
                events: match interest {
                    Interest::Readable => POLLIN,
                    Interest::Writable => POLLOUT,
                },
                revents: 0,
            });
        }
        // SAFETY: `fds` is a live, properly initialized repr(C) slice
        // for the duration of the call and the length is its true
        // length; poll(2) only writes within the passed array.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms(timeout)) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for (slot, (token, _, _)) in fds.iter().skip(1).zip(sources) {
            let revents = slot.revents;
            if revents == 0 {
                continue;
            }
            events.push(Event {
                token: *token,
                // Errors and hang-ups surface as readable so the
                // handler's next read observes the failure.
                readable: revents & (POLLIN | POLLERR | POLLHUP) != 0,
                writable: revents & (POLLOUT | POLLERR | POLLHUP) != 0,
            });
        }
        Ok(events.len())
    }

    pub(super) fn wait_writable_impl(
        stream: &TcpStream,
        timeout: Duration,
    ) -> std::io::Result<bool> {
        let mut fds = [PollFd {
            fd: stream.as_raw_fd(),
            events: POLLOUT,
            revents: 0,
        }];
        // SAFETY: single live repr(C) element, true length 1.
        let rc = unsafe { poll(fds.as_mut_ptr(), 1, timeout_ms(Some(timeout))) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(err);
        }
        Ok(fds[0].revents & (POLLOUT | POLLERR | POLLHUP) != 0)
    }
}

#[cfg(not(any(target_os = "linux", target_os = "android")))]
mod sys {
    //! Portable fallback: a short bounded sleep, then report every
    //! source ready. Correct because connection I/O is non-blocking
    //! and spurious readiness is part of the [`Poller::poll`] contract;
    //! the cost is a ~20ms wake cadence instead of true readiness.

    use std::net::TcpStream;
    use std::time::Duration;

    use super::{Event, Interest};

    const TICK: Duration = Duration::from_millis(20);

    pub(super) fn poll_impl(
        _wake_rx: &std::os::unix::net::UnixStream,
        sources: &[(usize, &TcpStream, Interest)],
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> std::io::Result<usize> {
        let wait = timeout.unwrap_or(TICK).min(TICK);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        for (token, _, _) in sources {
            events.push(Event {
                token: *token,
                readable: true,
                writable: true,
            });
        }
        Ok(events.len())
    }

    pub(super) fn wait_writable_impl(
        _stream: &TcpStream,
        timeout: Duration,
    ) -> std::io::Result<bool> {
        std::thread::sleep(timeout.min(TICK));
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        client.set_nonblocking(true).expect("nonblocking");
        server.set_nonblocking(true).expect("nonblocking");
        (client, server)
    }

    #[test]
    fn poll_times_out_when_nothing_is_ready() {
        let (mut poller, _waker) = Poller::new().expect("poller");
        let (client, _server) = pair();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .poll(
                &[(0, &client, Interest::Readable)],
                Some(Duration::from_millis(30)),
                &mut events,
            )
            .expect("poll");
        assert_eq!(n, 0, "{events:?}");
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn poll_reports_readable_after_peer_write() {
        let (mut poller, _waker) = Poller::new().expect("poller");
        let (client, mut server) = pair();
        server.write_all(b"hi").expect("peer write");
        let mut events = Vec::new();
        let n = poller
            .poll(
                &[(7, &client, Interest::Readable)],
                Some(Duration::from_secs(2)),
                &mut events,
            )
            .expect("poll");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        let (mut poller, waker) = Poller::new().expect("poller");
        let (client, _server) = pair();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
            waker.wake(); // idempotent
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .poll(
                &[(0, &client, Interest::Readable)],
                Some(Duration::from_secs(5)),
                &mut events,
            )
            .expect("poll");
        // Woken well before the 5s timeout; the wake produced no event.
        assert!(start.elapsed() < Duration::from_secs(4));
        assert!(events.iter().all(|e| e.token != usize::MAX));
        handle.join().expect("join");
    }

    #[test]
    fn connected_stream_is_writable() {
        let (client, _server) = pair();
        assert!(wait_writable(&client, Duration::from_secs(1)).expect("wait"));
    }
}
