//! Atomic hot model reload.
//!
//! The server keeps one [`ModelSlot`] shared by every shard. Scorer
//! threads clone the current [`ModelVersion`] `Arc` once per batch, so
//! a reload takes effect exactly at a batch boundary: in-flight batches
//! finish against the weights they started with, later batches pick up
//! the new generation, and no response ever mixes the two.
//!
//! [`load_model`] accepts three artifact shapes at a single path:
//! a [`DetectorPipeline`] JSON export, a bare [`Network`] JSON export,
//! or a training checkpoint directory (`checkpoint.json` inside). The
//! candidate is validated against the serving pipeline (input
//! dimension, binary head) before it is installed, so a bad artifact
//! leaves the current generation untouched.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use maleva_core::DetectorPipeline;
use maleva_nn::{Network, TrainCheckpoint};

use crate::error::ServeError;

/// One immutable set of weights plus the generation it was installed
/// as. Generation 0 is the boot model; reloads count up from 1.
#[derive(Debug)]
pub struct ModelVersion {
    /// The scoring network.
    pub network: Network,
    /// Monotonic install counter (0 = the weights the server booted
    /// with).
    pub generation: u64,
}

/// Shared, swappable handle to the current [`ModelVersion`].
///
/// Readers call [`ModelSlot::current`] (a cheap lock + `Arc` clone) at
/// most once per batch; [`ModelSlot::generation`] is a lock-free read
/// for cache-validity checks on the hot path.
#[derive(Debug)]
pub struct ModelSlot {
    current: Mutex<Arc<ModelVersion>>,
    generation: AtomicU64,
}

impl ModelSlot {
    /// Wraps the boot network as generation 0.
    pub fn new(network: Network) -> Self {
        ModelSlot {
            current: Mutex::new(Arc::new(ModelVersion {
                network,
                generation: 0,
            })),
            generation: AtomicU64::new(0),
        }
    }

    /// The live version; clones the `Arc`, never the weights.
    pub fn current(&self) -> Arc<ModelVersion> {
        match self.current.lock() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// The live generation, readable without touching the slot lock.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Installs `network` as the next generation and returns it. The
    /// swap is atomic from a reader's point of view: `current()`
    /// observes either the old or the new version, never a torn mix.
    pub fn install(&self, network: Network) -> u64 {
        let mut guard = match self.current.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let next = guard.generation + 1;
        *guard = Arc::new(ModelVersion {
            network,
            generation: next,
        });
        self.generation.store(next, Ordering::Release);
        next
    }
}

/// Loads candidate weights from `path` and validates them against the
/// serving `pipeline`. Accepts a pipeline JSON file, a network JSON
/// file, or a checkpoint directory; any parse or shape problem maps to
/// [`ServeError::ReloadFailed`] without touching the live model.
pub fn load_model(path: &str, pipeline: &DetectorPipeline) -> Result<Network, ServeError> {
    let network = read_network(Path::new(path))?;
    let want_dim = pipeline.features().dim();
    if network.input_dim() != want_dim {
        return Err(ServeError::ReloadFailed {
            detail: format!(
                "input dimension mismatch: model expects {}, pipeline produces {want_dim}",
                network.input_dim()
            ),
        });
    }
    if network.num_classes() != 2 {
        return Err(ServeError::ReloadFailed {
            detail: format!(
                "expected a binary head, model has {} classes",
                network.num_classes()
            ),
        });
    }
    Ok(network)
}

fn read_network(path: &Path) -> Result<Network, ServeError> {
    if path.is_dir() {
        return match TrainCheckpoint::load(path) {
            Ok(Some(checkpoint)) => Ok(checkpoint.network),
            Ok(None) => Err(ServeError::ReloadFailed {
                detail: format!("no checkpoint found in {}", path.display()),
            }),
            Err(e) => Err(ServeError::ReloadFailed {
                detail: format!("checkpoint load failed: {e}"),
            }),
        };
    }
    let json = std::fs::read_to_string(path).map_err(|e| ServeError::ReloadFailed {
        detail: format!("cannot read {}: {e}", path.display()),
    })?;
    if let Ok(pipeline) = DetectorPipeline::from_json(&json) {
        return Ok(pipeline.network().clone());
    }
    Network::from_json(&json).map_err(|e| ServeError::ReloadFailed {
        detail: format!(
            "{} is neither a pipeline nor a network export: {e}",
            path.display()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maleva_core::{ExperimentContext, ExperimentScale};
    use maleva_nn::{Activation, NetworkBuilder};
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| {
            ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny context")
        })
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("maleva-reload-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn slot_swaps_atomically_and_counts_generations() {
        let pipeline = &ctx().detector;
        let slot = ModelSlot::new(pipeline.network().clone());
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.current().generation, 0);
        let g1 = slot.install(pipeline.network().clone());
        assert_eq!(g1, 1);
        assert_eq!(slot.generation(), 1);
        let old = slot.current();
        let g2 = slot.install(pipeline.network().clone());
        assert_eq!(g2, 2);
        // A reader holding the old Arc still sees a coherent version.
        assert_eq!(old.generation, 1);
        assert_eq!(slot.current().generation, 2);
    }

    #[test]
    fn loads_a_network_export_and_a_pipeline_export() {
        let pipeline = &ctx().detector;
        let dir = scratch("exports");
        let net_path = dir.join("network.json");
        std::fs::write(&net_path, pipeline.network().to_json().expect("to_json"))
            .expect("write network");
        let loaded = load_model(net_path.to_str().expect("utf8"), pipeline).expect("load network");
        assert_eq!(loaded.input_dim(), pipeline.features().dim());

        let pipe_path = dir.join("pipeline.json");
        std::fs::write(&pipe_path, pipeline.to_json().expect("to_json")).expect("write pipeline");
        load_model(pipe_path.to_str().expect("utf8"), pipeline).expect("load pipeline");
    }

    #[test]
    fn rejects_missing_files_shape_mismatches_and_empty_checkpoints() {
        let pipeline = &ctx().detector;
        let err = load_model("/nonexistent/model.json", pipeline).expect_err("missing file");
        assert_eq!(err.kind(), "reload_failed");

        let dir = scratch("bad");
        let wrong = NetworkBuilder::new(pipeline.features().dim() + 3)
            .layer(4, Activation::ReLU)
            .layer(2, Activation::Identity)
            .seed(7)
            .build()
            .expect("build network");
        let wrong_path = dir.join("wrong.json");
        std::fs::write(&wrong_path, wrong.to_json().expect("to_json")).expect("write");
        let err = load_model(wrong_path.to_str().expect("utf8"), pipeline)
            .expect_err("dimension mismatch");
        assert!(err.to_string().contains("dimension mismatch"), "{err}");

        let empty = scratch("empty-checkpoint");
        let err = load_model(empty.to_str().expect("utf8"), pipeline).expect_err("no checkpoint");
        assert!(err.to_string().contains("no checkpoint"), "{err}");
    }
}
