//! The extraction sentinel: a per-client stateful query-pattern
//! detector on the scoring hot path's edge.
//!
//! Model-extraction attackers (Papernot-style substitute training, as
//! implemented by `core::blackbox` and driven live by
//! `maleva-campaign`) have a telltale query shape: they submit a
//! sample, then the *same sample with one API call inserted*, oscillate
//! around the decision boundary, and do it thousands of times. Benign
//! traffic does not — it either repeats *exact* queries (caches,
//! replays, health probes) or sends genuinely unrelated samples.
//!
//! The sentinel exploits that gap with three per-client signals over a
//! sliding window of quantized feature vectors (the same quantization
//! the score cache keys on, so the signal is free to compute):
//!
//! 1. **near-duplicate probing** — a query whose Hamming distance to a
//!    recent query is small but *non-zero*. Exact repeats (distance 0)
//!    are deliberately excluded: they are what benign replay traffic
//!    looks like, and an attacker learns nothing new from them.
//! 2. **decision-boundary oscillation** — a near-duplicate pair whose
//!    two verdicts *differ*: the client is straddling the boundary,
//!    which is precisely what Jacobian augmentation and JSMA probing
//!    produce.
//! 3. **rate tracking** — requests per second per client, reported for
//!    operators but *never* used in decisions, so every decision is a
//!    pure function of (seed, client history) and failing runs replay
//!    exactly.
//!
//! Once flagged (sticky), a client is answered deterministically per
//! the configured [`SentinelAction`]: `throttle` refuses with a typed
//! `throttled` error and a `retry_after_ms` hint, `poison` serves
//! plausible but seed-randomized scores so the harvested labels train a
//! garbage substitute.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// What the sentinel does with queries from a flagged client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentinelAction {
    /// Refuse with a typed `throttled` error carrying `retry_after_ms`.
    Throttle,
    /// Answer with a deterministic, seed-randomized score instead of
    /// the real one (verdict poisoning): the attacker keeps spending
    /// queries and harvests labels that train a garbage substitute.
    Poison,
}

impl SentinelAction {
    /// Stable lowercase name (`"throttle"` / `"poison"`).
    pub fn name(&self) -> &'static str {
        match self {
            SentinelAction::Throttle => "throttle",
            SentinelAction::Poison => "poison",
        }
    }
}

/// Sentinel configuration. Defaults are off; when enabled, the
/// thresholds are tuned so benign traffic (exact repeats, unrelated
/// samples) never flags while a substitute-training attacker flags
/// within its first augmentation round.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelConfig {
    /// Master switch; when false the sentinel records nothing and every
    /// decision is `Allow`.
    pub enabled: bool,
    /// Response to flagged clients.
    pub action: SentinelAction,
    /// Sliding-window length, in queries, per client.
    pub window: usize,
    /// Maximum Hamming distance (over quantized feature vectors) for a
    /// query to count as a near-duplicate of a windowed one. Distance 0
    /// (exact repeat) never counts.
    pub hamming_threshold: usize,
    /// Minimum total queries from a client before it can be flagged
    /// (grace period so short benign sessions are never judged).
    pub min_queries: u64,
    /// Flag when at least this many queries in the window are
    /// near-duplicates.
    pub dup_flag_count: usize,
    /// Flag when at least this many windowed near-duplicate pairs have
    /// differing verdicts (decision-boundary oscillation).
    pub flip_flag_count: usize,
    /// Maximum number of clients tracked; beyond it, new clients are
    /// admitted untracked (fail open) rather than evicting history.
    pub max_clients: usize,
    /// The `retry_after_ms` hint sent with `throttled` errors.
    pub retry_after_ms: u64,
    /// Seed for verdict poisoning; the poisoned score is a pure
    /// function of (seed, quantized features).
    pub seed: u64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            enabled: false,
            action: SentinelAction::Throttle,
            window: 256,
            hamming_threshold: 8,
            min_queries: 16,
            dup_flag_count: 8,
            flip_flag_count: 4,
            max_clients: 4096,
            retry_after_ms: 25,
            seed: 0,
        }
    }
}

/// The sentinel's verdict for an incoming score request, decided
/// *before* scoring from the client's recorded history alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentinelDecision {
    /// Score and answer normally.
    Allow,
    /// Refuse with `throttled`.
    Throttle {
        /// Suggested client wait, in milliseconds.
        retry_after_ms: u64,
    },
    /// Score normally but answer with the poisoned score.
    Poison,
}

/// What [`Sentinel::record`] observed about one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Observed {
    /// The query was a near-duplicate of a windowed one.
    pub near_duplicate: bool,
    /// The query was a near-duplicate with a differing verdict.
    pub verdict_flip: bool,
    /// Recording this query crossed a flag threshold.
    pub newly_flagged: bool,
}

/// One windowed query, reduced to what eviction accounting needs. The
/// key itself lives (refcounted) in the client's distinct-key index.
struct WindowSlot {
    fingerprint: u64,
    verdict: Option<bool>,
    near_duplicate: bool,
    verdict_flip: bool,
    /// False only for the astronomically unlikely fingerprint
    /// collision, where the slot deliberately owns no distinct-key
    /// reference (fail benign).
    tracked: bool,
}

/// One distinct quantized key currently in the window, with its
/// precomputed near-duplicate neighbourhood. Benign traffic repeats a
/// small set of keys, so the expensive Hamming scan runs once per
/// *distinct* key instead of once per query; every repeat is a hash
/// lookup.
struct DistinctKey {
    key: Vec<i64>,
    /// Windowed queries holding this key; the entry dies at zero.
    refs: usize,
    /// Windowed queries with this key answered `true` / `false`
    /// (refused queries carry no verdict and count in neither).
    true_refs: usize,
    false_refs: usize,
    /// Fingerprints of other in-window distinct keys within the
    /// Hamming threshold (symmetric; eagerly pruned on eviction).
    near: Vec<u64>,
}

impl DistinctKey {
    fn bump_verdict(&mut self, verdict: Option<bool>, delta: isize) {
        let slot = match verdict {
            Some(true) => &mut self.true_refs,
            Some(false) => &mut self.false_refs,
            None => return,
        };
        *slot = slot.checked_add_signed(delta).unwrap_or(0);
    }
}

/// Per-client sliding-window state.
struct ClientState {
    window: VecDeque<WindowSlot>,
    distinct: HashMap<u64, DistinctKey>,
    total_queries: u64,
    total_near_duplicates: u64,
    total_verdict_flips: u64,
    window_near_duplicates: usize,
    window_verdict_flips: usize,
    flagged: bool,
    flagged_at_query: u64,
    throttled: u64,
    poisoned: u64,
    first_seen: Instant,
    last_seen: Instant,
}

impl ClientState {
    fn new(now: Instant) -> Self {
        ClientState {
            window: VecDeque::new(),
            distinct: HashMap::new(),
            total_queries: 0,
            total_near_duplicates: 0,
            total_verdict_flips: 0,
            window_near_duplicates: 0,
            window_verdict_flips: 0,
            flagged: false,
            flagged_at_query: 0,
            throttled: 0,
            poisoned: 0,
            first_seen: now,
            last_seen: now,
        }
    }
}

/// Per-client report row in a `{"cmd":"sentinel"}` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentinelClientReport {
    /// The client's identifier (`client_id` field, or peer address).
    pub client_id: String,
    /// Total score queries recorded.
    pub queries: u64,
    /// Total near-duplicate queries observed.
    pub near_duplicates: u64,
    /// Total verdict flips observed.
    pub verdict_flips: u64,
    /// Near-duplicates currently in the sliding window.
    pub window_near_duplicates: usize,
    /// Verdict flips currently in the sliding window.
    pub window_verdict_flips: usize,
    /// Whether this client is flagged (sticky).
    pub flagged: bool,
    /// Query index at which the client was flagged (`0` = never).
    pub flagged_at_query: u64,
    /// Queries refused with `throttled`.
    pub throttled: u64,
    /// Queries answered with poisoned scores.
    pub poisoned: u64,
    /// Observed request rate (queries per second of wall clock between
    /// first and last query) — reporting only, never a decision input.
    pub observed_rps: f64,
}

/// The body of a `{"cmd":"sentinel"}` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentinelReport {
    /// Whether the sentinel is enabled.
    pub enabled: bool,
    /// The configured action (`"throttle"` / `"poison"`).
    pub action: String,
    /// Clients currently tracked.
    pub tracked_clients: usize,
    /// Clients currently flagged.
    pub flagged_clients: usize,
    /// Per-client rows, sorted by `client_id`.
    pub clients: Vec<SentinelClientReport>,
}

/// The stateful sentinel. One instance per server, guarding all
/// clients; callers hold it under the server's lock.
pub struct Sentinel {
    config: SentinelConfig,
    clients: HashMap<String, ClientState>,
}

/// Hamming distance between two quantized feature vectors, with an
/// early exit once the distance exceeds `limit` (the common case for
/// unrelated benign queries, which differ almost everywhere). The
/// inner accumulation is branchless over 64-element chunks so the
/// compiler can vectorize it; the exit check runs per chunk. Runs only
/// when a *never-seen* key enters a client's window — repeats resolve
/// through the fingerprint index — but still under the sentinel lock,
/// so the `sentinel_idle` phase of the `serve_load` bench gates its
/// cost.
fn hamming_exceeds(a: &[i64], b: &[i64], limit: usize) -> (usize, bool) {
    if a.len() != b.len() {
        return (usize::MAX, true);
    }
    let mut d = 0usize;
    for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
        for (x, y) in ca.iter().zip(cb.iter()) {
            d += usize::from(x != y);
        }
        if d > limit {
            return (d, true);
        }
    }
    (d, false)
}

/// Fingerprint of a quantized feature vector: FNV-1a over whole 64-bit
/// lanes (one xor-multiply per coordinate, not per byte — this runs on
/// every scored request). Collisions are not a correctness hazard: the
/// fast path verifies key equality, and a colliding *distinct* key is
/// merely skipped as evidence (fail benign).
fn fingerprint(key: &[i64]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for v in key {
        h = (h ^ (*v as u64)).wrapping_mul(FNV_PRIME);
        h ^= h >> 29;
    }
    h
}

/// The poisoned score for a quantized feature vector: FNV-1a over the
/// seed and key bytes, folded into `[0, 1)`. Pure function of
/// (seed, key), so a flagged attacker re-querying the same sample sees
/// a *consistent* wrong answer (inconsistency would itself be a signal
/// that poisoning is happening).
pub fn poison_score(seed: u64, key: &[i64]) -> f64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in seed.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for v in key {
        for byte in v.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    // Top 53 bits → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl Sentinel {
    /// Builds a sentinel from its configuration.
    pub fn new(config: SentinelConfig) -> Self {
        Sentinel {
            config,
            clients: HashMap::new(),
        }
    }

    /// The sentinel's configuration.
    pub fn config(&self) -> &SentinelConfig {
        &self.config
    }

    /// Decides what to do with an incoming score request from
    /// `client_id`, *before* scoring, from recorded history alone.
    pub fn decide(&mut self, client_id: &str) -> SentinelDecision {
        if !self.config.enabled {
            return SentinelDecision::Allow;
        }
        let Some(state) = self.clients.get_mut(client_id) else {
            return SentinelDecision::Allow;
        };
        if !state.flagged {
            return SentinelDecision::Allow;
        }
        match self.config.action {
            SentinelAction::Throttle => {
                state.throttled += 1;
                SentinelDecision::Throttle {
                    retry_after_ms: self.config.retry_after_ms,
                }
            }
            SentinelAction::Poison => {
                state.poisoned += 1;
                SentinelDecision::Poison
            }
        }
    }

    /// Records one query from `client_id` with its quantized feature
    /// key and the verdict the client saw (`None` when the query was
    /// refused before scoring). Returns what was observed so the caller
    /// can bump metrics.
    pub fn record(&mut self, client_id: &str, key: Vec<i64>, verdict: Option<bool>) -> Observed {
        if !self.config.enabled {
            return Observed::default();
        }
        let now = Instant::now();
        let state = match self.clients.get_mut(client_id) {
            Some(s) => s,
            None => {
                if self.clients.len() >= self.config.max_clients {
                    // Fail open: admit untracked rather than evicting
                    // history an attacker could then flush.
                    return Observed::default();
                }
                self.clients
                    .entry(client_id.to_string())
                    .or_insert_with(|| ClientState::new(now))
            }
        };
        state.total_queries += 1;
        state.last_seen = now;
        if state.flagged {
            // The flag is sticky and can never be unset, so further
            // evidence collection is pure hot-path cost: keep counting
            // queries (for the report) but skip the window entirely.
            return Observed::default();
        }

        // Classify the query against the distinct-key index. A repeated
        // key (the entire benign steady state) is one hash lookup; only
        // a never-seen key pays the Hamming scan, and only against
        // *distinct* windowed keys.
        let fp = fingerprint(&key);
        let mut near_duplicate = false;
        let mut verdict_flip = false;
        let mut tracked = true;
        let flips = |distinct: &HashMap<u64, DistinctKey>, nfp: &u64, v: bool| {
            distinct
                .get(nfp)
                .is_some_and(|n| if v { n.false_refs > 0 } else { n.true_refs > 0 })
        };
        let new_neighbours = match state.distinct.get(&fp) {
            Some(entry) if entry.key == key => {
                // Exact repeat of a windowed key: its neighbourhood is
                // already known. Distance-0 priors never count, so the
                // repeat itself is not evidence — only live neighbours.
                near_duplicate = !entry.near.is_empty();
                if let Some(v) = verdict {
                    verdict_flip = entry.near.iter().any(|nfp| flips(&state.distinct, nfp, v));
                }
                None
            }
            Some(_) => {
                // Fingerprint collision with a different key: skip the
                // evidence rather than corrupt the colliding entry.
                tracked = false;
                None
            }
            None => {
                let mut near = Vec::new();
                for (other_fp, other) in &state.distinct {
                    let (d, exceeded) =
                        hamming_exceeds(&other.key, &key, self.config.hamming_threshold);
                    if !exceeded && d > 0 {
                        near.push(*other_fp);
                    }
                }
                near_duplicate = !near.is_empty();
                if let Some(v) = verdict {
                    verdict_flip = near.iter().any(|nfp| flips(&state.distinct, nfp, v));
                }
                Some(near)
            }
        };
        match new_neighbours {
            Some(near) => {
                for nfp in &near {
                    if let Some(n) = state.distinct.get_mut(nfp) {
                        n.near.push(fp);
                    }
                }
                let mut entry = DistinctKey {
                    key,
                    refs: 1,
                    true_refs: 0,
                    false_refs: 0,
                    near,
                };
                entry.bump_verdict(verdict, 1);
                state.distinct.insert(fp, entry);
            }
            None if tracked => {
                let entry = state.distinct.get_mut(&fp).expect("existing distinct key");
                entry.refs += 1;
                entry.bump_verdict(verdict, 1);
            }
            None => {}
        }

        if near_duplicate {
            state.total_near_duplicates += 1;
            state.window_near_duplicates += 1;
        }
        if verdict_flip {
            state.total_verdict_flips += 1;
            state.window_verdict_flips += 1;
        }

        state.window.push_back(WindowSlot {
            fingerprint: fp,
            verdict,
            near_duplicate,
            verdict_flip,
            tracked,
        });
        if state.window.len() > self.config.window {
            if let Some(evicted) = state.window.pop_front() {
                if evicted.near_duplicate {
                    state.window_near_duplicates -= 1;
                }
                if evicted.verdict_flip {
                    state.window_verdict_flips -= 1;
                }
                if evicted.tracked {
                    let emptied = match state.distinct.get_mut(&evicted.fingerprint) {
                        Some(entry) => {
                            entry.refs = entry.refs.saturating_sub(1);
                            entry.bump_verdict(evicted.verdict, -1);
                            entry.refs == 0
                        }
                        None => false,
                    };
                    if emptied {
                        if let Some(dead) = state.distinct.remove(&evicted.fingerprint) {
                            for nfp in dead.near {
                                if let Some(n) = state.distinct.get_mut(&nfp) {
                                    n.near.retain(|f| *f != evicted.fingerprint);
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut newly_flagged = false;
        if !state.flagged
            && state.total_queries >= self.config.min_queries
            && (state.window_near_duplicates >= self.config.dup_flag_count
                || state.window_verdict_flips >= self.config.flip_flag_count)
        {
            state.flagged = true;
            state.flagged_at_query = state.total_queries;
            newly_flagged = true;
        }
        Observed {
            near_duplicate,
            verdict_flip,
            newly_flagged,
        }
    }

    /// Clients currently tracked.
    pub fn tracked_clients(&self) -> usize {
        self.clients.len()
    }

    /// Clients currently flagged.
    pub fn flagged_clients(&self) -> usize {
        self.clients.values().filter(|c| c.flagged).count()
    }

    /// The full inspection report, rows sorted by client id.
    pub fn report(&self) -> SentinelReport {
        let mut clients: Vec<SentinelClientReport> = self
            .clients
            .iter()
            .map(|(id, s)| {
                let elapsed = s.last_seen.duration_since(s.first_seen).as_secs_f64();
                SentinelClientReport {
                    client_id: id.clone(),
                    queries: s.total_queries,
                    near_duplicates: s.total_near_duplicates,
                    verdict_flips: s.total_verdict_flips,
                    window_near_duplicates: s.window_near_duplicates,
                    window_verdict_flips: s.window_verdict_flips,
                    flagged: s.flagged,
                    flagged_at_query: s.flagged_at_query,
                    throttled: s.throttled,
                    poisoned: s.poisoned,
                    observed_rps: if elapsed > 0.0 {
                        (s.total_queries as f64 - 1.0) / elapsed
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        clients.sort_by(|a, b| a.client_id.cmp(&b.client_id));
        SentinelReport {
            enabled: self.config.enabled,
            action: self.config.action.name().to_string(),
            tracked_clients: self.clients.len(),
            flagged_clients: clients.iter().filter(|c| c.flagged).count(),
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled(action: SentinelAction) -> SentinelConfig {
        SentinelConfig {
            enabled: true,
            action,
            min_queries: 4,
            dup_flag_count: 3,
            flip_flag_count: 2,
            ..SentinelConfig::default()
        }
    }

    fn key(bits: &[i64]) -> Vec<i64> {
        bits.to_vec()
    }

    #[test]
    fn disabled_sentinel_never_tracks_or_flags() {
        let mut s = Sentinel::new(SentinelConfig::default());
        for i in 0..1000i64 {
            assert_eq!(s.decide("c"), SentinelDecision::Allow);
            let obs = s.record("c", key(&[i % 2, 0, 0, 0]), Some(i % 2 == 0));
            assert_eq!(obs, Observed::default());
        }
        assert_eq!(s.tracked_clients(), 0);
    }

    #[test]
    fn exact_repeats_never_count_as_near_duplicates() {
        // Benign replay traffic: the same handful of samples over and
        // over (what a cache-warm client or `serve_load` does).
        let mut s = Sentinel::new(enabled(SentinelAction::Throttle));
        // Keys must be mutually distant (> hamming_threshold), like
        // real distinct samples in a 491-dim feature space.
        let pool = [key(&[1; 32]), key(&[2; 32]), key(&[3; 32])];
        for i in 0..500 {
            assert_eq!(s.decide("benign"), SentinelDecision::Allow);
            let obs = s.record("benign", pool[i % pool.len()].clone(), Some(false));
            assert!(!obs.near_duplicate, "iteration {i}");
            assert!(!obs.newly_flagged);
        }
        assert_eq!(s.flagged_clients(), 0);
    }

    #[test]
    fn unrelated_queries_never_flag() {
        // Distinct benign samples differ in (far) more than the
        // Hamming threshold of coordinates.
        let mut s = Sentinel::new(enabled(SentinelAction::Throttle));
        for i in 0..200i64 {
            let k: Vec<i64> = (0..32).map(|j| i * 1000 + j).collect();
            s.record("benign", k, Some(false));
        }
        assert_eq!(s.flagged_clients(), 0);
    }

    #[test]
    fn near_duplicate_probing_flags_and_throttles() {
        let mut s = Sentinel::new(enabled(SentinelAction::Throttle));
        let base: Vec<i64> = (0..32).collect();
        let mut flagged_at = None;
        for i in 0..40 {
            if s.decide("attacker") != SentinelDecision::Allow {
                break;
            }
            // One coordinate flipped per probe: classic Jacobian probing.
            let mut k = base.clone();
            k[i % 32] += 1;
            let obs = s.record("attacker", k, Some(false));
            if obs.newly_flagged {
                flagged_at = Some(i + 1);
            }
        }
        let at = flagged_at.expect("probing attacker must flag");
        assert!(at >= 4, "grace period respected, flagged at {at}");
        // The loop's own post-flag decide() counted one throttle.
        match s.decide("attacker") {
            SentinelDecision::Throttle { retry_after_ms } => assert_eq!(retry_after_ms, 25),
            other => panic!("expected throttle, got {other:?}"),
        }
        // Sticky: still throttled many queries later.
        for _ in 0..10 {
            assert!(matches!(
                s.decide("attacker"),
                SentinelDecision::Throttle { .. }
            ));
        }
        let report = s.report();
        let row = &report.clients[0];
        assert!(row.flagged);
        assert_eq!(row.flagged_at_query, at as u64);
        assert_eq!(row.throttled, 12);
    }

    #[test]
    fn verdict_oscillation_flags_faster_than_duplicates_alone() {
        let mut cfg = enabled(SentinelAction::Throttle);
        cfg.dup_flag_count = 1000; // disable the dup path
        let mut s = Sentinel::new(cfg);
        let base: Vec<i64> = (0..32).collect();
        let mut flagged = false;
        for i in 0..40 {
            let mut k = base.clone();
            k[i % 32] += 1;
            // Alternating verdicts: the client straddles the boundary.
            let obs = s.record("attacker", k, Some(i % 2 == 0));
            if obs.newly_flagged {
                flagged = true;
                break;
            }
        }
        assert!(flagged, "oscillating attacker must flag via the flip path");
    }

    #[test]
    fn poison_action_poisons_after_flagging() {
        let mut s = Sentinel::new(enabled(SentinelAction::Poison));
        let base: Vec<i64> = (0..32).collect();
        for i in 0..40 {
            let mut k = base.clone();
            k[i % 32] += 1;
            s.record("attacker", k, Some(false));
        }
        assert_eq!(s.decide("attacker"), SentinelDecision::Poison);
        assert_eq!(s.report().clients[0].poisoned, 1);
    }

    #[test]
    fn poison_score_is_deterministic_and_key_sensitive() {
        let a = key(&[1, 2, 3]);
        let b = key(&[1, 2, 4]);
        assert_eq!(poison_score(7, &a), poison_score(7, &a));
        assert!((0.0..1.0).contains(&poison_score(7, &a)));
        assert_ne!(poison_score(7, &a), poison_score(7, &b));
        assert_ne!(poison_score(7, &a), poison_score(8, &a));
    }

    #[test]
    fn decisions_replay_exactly_for_the_same_history() {
        // Pure function of (seed, history): replay the same interleaved
        // query sequence twice, assert identical decisions and reports
        // (modulo wall-clock rates).
        let run = || {
            let mut s = Sentinel::new(enabled(SentinelAction::Throttle));
            let mut decisions = Vec::new();
            let base: Vec<i64> = (0..16).collect();
            for i in 0..60i64 {
                let (cid, k, v) = if i % 3 == 0 {
                    (
                        "benign",
                        (0..16).map(|j| i * 1000 + j).collect(),
                        Some(false),
                    )
                } else {
                    let mut k = base.clone();
                    k[(i % 16) as usize] += 1;
                    ("attacker", k, Some(i % 2 == 0))
                };
                let d = s.decide(cid);
                let refused = matches!(d, SentinelDecision::Throttle { .. });
                decisions.push((cid, d));
                s.record(cid, k, if refused { None } else { v });
            }
            let mut rep = s.report();
            for c in &mut rep.clients {
                c.observed_rps = 0.0; // wall clock: reporting only
            }
            (decisions, rep)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn max_clients_fails_open() {
        let mut cfg = enabled(SentinelAction::Throttle);
        cfg.max_clients = 2;
        let mut s = Sentinel::new(cfg);
        s.record("a", key(&[1]), Some(false));
        s.record("b", key(&[2]), Some(false));
        let obs = s.record("c", key(&[3]), Some(false));
        assert_eq!(obs, Observed::default());
        assert_eq!(s.tracked_clients(), 2);
        assert_eq!(s.decide("c"), SentinelDecision::Allow);
    }

    #[test]
    fn window_eviction_decays_old_evidence() {
        let mut cfg = enabled(SentinelAction::Throttle);
        cfg.window = 4;
        cfg.dup_flag_count = 100; // never flag; observe window counters
        cfg.flip_flag_count = 100;
        let mut s = Sentinel::new(cfg);
        let base: Vec<i64> = (0..16).collect();
        for i in 0..3 {
            let mut k = base.clone();
            k[i] += 1;
            s.record("c", k, Some(false));
        }
        // Three mutual near-duplicates in the window (first one had no
        // neighbour yet).
        assert_eq!(s.report().clients[0].window_near_duplicates, 2);
        // Push unrelated queries until the probes evict.
        for i in 0..8i64 {
            s.record("c", key(&[i * 1000; 16]), Some(false));
        }
        assert_eq!(s.report().clients[0].window_near_duplicates, 0);
        assert!(s.report().clients[0].near_duplicates >= 2, "totals persist");
    }
}
