//! The multi-threaded TCP scoring server.
//!
//! Thread layout:
//!
//! * **acceptor** — owns the `TcpListener`, spawns one connection
//!   thread per client, reaps finished ones, and on shutdown joins them
//!   all before dropping the master queue sender;
//! * **connection threads** — read newline-delimited requests (with a
//!   bounded line length and a short read timeout so shutdown is always
//!   observed), answer cache hits directly, and push misses into the
//!   bounded scoring queue ([`ServeError::Overloaded`] when full);
//! * **scorer** — drains micro-batches from the queue
//!   ([`crate::batch::collect_batch`]) and runs one batched forward
//!   pass per batch, then fans replies back out.
//!
//! Shutdown (`{"cmd": "shutdown"}` or [`ServerHandle::shutdown`]) is a
//! drain, not an abort: the acceptor stops accepting, connection
//! threads finish their current request, and the scorer keeps scoring
//! until the queue is empty and disconnected, so every enqueued request
//! still receives its response.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use maleva_core::DetectorPipeline;
use maleva_obs::slo::SloSpec;
use maleva_obs::trace::{self, Span};

use crate::batch::{collect_batch, score_rows_isolated, ScoreJob, ScoredReply};
use crate::cache::{quantize, LruCache};
use crate::error::ServeError;
use crate::fault::{FaultInjector, FaultPlan, FaultSite};
use crate::metrics::{Metrics, MetricsSnapshot, StageTimes};
use crate::protocol::{self, HealthReport, Request, ScoreResponse, TraceContext};
use crate::sentinel::{poison_score, Sentinel, SentinelConfig, SentinelDecision, SentinelReport};
use crate::slo::{default_serve_slos, SloReport, SloRuntime};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Maximum rows per batched forward pass.
    pub max_batch: usize,
    /// How long the scorer waits for a batch to fill after the first
    /// job arrives.
    pub batch_timeout: Duration,
    /// Bounded scoring-queue capacity; a full queue yields
    /// [`ServeError::Overloaded`] instead of blocking the client.
    pub queue_capacity: usize,
    /// LRU score-cache capacity in entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// Maximum request-line length in bytes.
    pub max_line_bytes: usize,
    /// Per-request deadline: a score request not answered within this
    /// budget gets a typed `deadline_exceeded` error instead of a
    /// connection that hangs on a slow or wedged scorer.
    pub request_deadline: Duration,
    /// Admission-control threshold: when the scoring queue already
    /// holds at least this many jobs, new misses are shed with
    /// `overloaded` (plus a `retry_after_ms` hint) *before* the queue
    /// fills. Defaults to `queue_capacity` (shed only when full).
    pub shed_queue_depth: usize,
    /// Deterministic fault-injection plan; disabled by default.
    pub faults: FaultPlan,
    /// Extraction-sentinel configuration; disabled by default.
    pub sentinel: SentinelConfig,
    /// SLO specs evaluated by `{"cmd": "slo"}`; defaults to
    /// [`default_serve_slos`]. Empty disables the alarm engine.
    pub slos: Vec<SloSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 32,
            batch_timeout: Duration::from_millis(2),
            queue_capacity: 1024,
            cache_capacity: 4096,
            max_line_bytes: 1 << 20,
            request_deadline: Duration::from_secs(30),
            shed_queue_depth: 1024,
            faults: FaultPlan::disabled(),
            sentinel: SentinelConfig::default(),
            slos: default_serve_slos(),
        }
    }
}

/// Suggested client wait before retrying after an overload rejection:
/// roughly how long the queued work ahead of the request will take to
/// drain (batches ahead x batch timeout), capped at one second so the
/// hint never parks clients for long.
pub(crate) fn suggested_retry_after_ms(
    queue_depth: u64,
    max_batch: usize,
    batch_timeout: Duration,
) -> u64 {
    let batches_ahead = queue_depth / max_batch.max(1) as u64 + 1;
    let per_batch_ms = (batch_timeout.as_millis() as u64).max(1);
    (batches_ahead * per_batch_ms).min(1_000)
}

/// How often blocked reads wake up to observe the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(50);

struct Shared {
    pipeline: DetectorPipeline,
    config: ServeConfig,
    metrics: Metrics,
    cache: Mutex<LruCache<Vec<i64>, f64>>,
    sentinel: Mutex<Sentinel>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    injector: FaultInjector,
    slo: SloRuntime,
}

impl Shared {
    /// [`FaultInjector::should_fire`] plus the faults-injected metric.
    fn fire(&self, site: FaultSite) -> bool {
        let fired = self.injector.should_fire(site);
        if fired {
            self.metrics.faults_injected.inc();
        }
        fired
    }

    fn trigger_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            // Unblock the acceptor with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        }
    }
}

/// A running server: its address, metrics access, and shutdown control.
///
/// Dropping the handle shuts the server down (best effort, joining all
/// threads); call [`ServerHandle::join`] to instead block until a
/// client sends `{"cmd": "shutdown"}`.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    scorer: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        snapshot(&self.shared)
    }

    /// Per-site injected-fault counters, `(site, fired)` in stable
    /// order (all zero when injection is disabled).
    pub fn fault_counts(&self) -> Vec<(&'static str, u64)> {
        self.shared.injector.fired_counts()
    }

    /// The same health report served to `{"cmd": "health"}` clients.
    pub fn health(&self) -> HealthReport {
        health_report(&self.shared)
    }

    /// The same sentinel report served to `{"cmd": "sentinel"}` clients.
    pub fn sentinel(&self) -> SentinelReport {
        sentinel_report(&self.shared)
    }

    /// Evaluates the SLO burn-rate alarms now — the same report served
    /// to `{"cmd": "slo"}` clients.
    pub fn slo(&self) -> SloReport {
        self.shared
            .slo
            .observe_and_evaluate(self.shared.metrics.registry())
    }

    /// Whether a shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Initiates a graceful drain and waits for all threads to finish.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shared.trigger_shutdown();
        self.join_threads();
        snapshot(&self.shared)
    }

    /// Blocks until the server shuts down (e.g. a client sent
    /// `{"cmd": "shutdown"}`), then returns the final metrics.
    pub fn join(mut self) -> MetricsSnapshot {
        self.join_threads();
        snapshot(&self.shared)
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scorer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.scorer.is_some() {
            self.shared.trigger_shutdown();
            self.join_threads();
        }
    }
}

fn snapshot(shared: &Shared) -> MetricsSnapshot {
    let entries = shared.cache.lock().map(|c| c.len()).unwrap_or(0);
    refresh_sentinel_gauge(shared);
    shared.metrics.snapshot(entries)
}

fn refresh_sentinel_gauge(shared: &Shared) {
    if let Ok(s) = shared.sentinel.lock() {
        shared
            .metrics
            .sentinel_tracked_clients
            .set(s.tracked_clients().min(i64::MAX as usize) as i64);
    }
}

fn sentinel_report(shared: &Shared) -> SentinelReport {
    shared
        .sentinel
        .lock()
        .map(|s| s.report())
        .unwrap_or_else(|poisoned| poisoned.into_inner().report())
}

/// Binds the listener and spawns the acceptor + scorer threads.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn spawn(pipeline: DetectorPipeline, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache_capacity = config.cache_capacity;
    let max_batch = config.max_batch.max(1);
    let batch_timeout = config.batch_timeout;
    let queue_capacity = config.queue_capacity.max(1);

    let injector = FaultInjector::new(config.faults.clone());
    let sentinel = Sentinel::new(config.sentinel.clone());
    let metrics = Metrics::new();
    let slo = SloRuntime::new(config.slos.clone(), metrics.registry());
    let shared = Arc::new(Shared {
        pipeline,
        config,
        metrics,
        cache: Mutex::new(LruCache::new(cache_capacity)),
        sentinel: Mutex::new(sentinel),
        shutting_down: AtomicBool::new(false),
        addr,
        injector,
        slo,
    });

    let (tx, rx) = mpsc::sync_channel::<ScoreJob>(queue_capacity);

    let scorer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("maleva-serve-scorer".to_string())
            .spawn(move || scorer_loop(&shared, &rx, max_batch, batch_timeout))?
    };

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("maleva-serve-acceptor".to_string())
            .spawn(move || acceptor_loop(&shared, &listener, tx))?
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        scorer: Some(scorer),
    })
}

fn scorer_loop(
    shared: &Shared,
    rx: &mpsc::Receiver<ScoreJob>,
    max_batch: usize,
    batch_timeout: Duration,
) {
    while let Some(jobs) = collect_batch(rx, max_batch, batch_timeout) {
        let mut span = Span::enter("serve.batch");
        // Batch execution starts here: each job's `batch_wait` stage
        // ends now, and everything until the scores are back — the
        // rows copy, any injected slow-inference fault, and the
        // forward pass itself — is attributed to `inference`.
        let exec_start = Instant::now();
        shared.metrics.queue_depth.add(-(jobs.len() as i64));
        if shared.fire(FaultSite::ScoreDelay) {
            std::thread::sleep(shared.injector.delay());
        }
        let rows: Vec<Vec<f64>> = jobs.iter().map(|j| j.features.clone()).collect();
        span.record("rows", rows.len() as u64);
        // Tag the batch with every member's wire trace so a request is
        // followable into the batch that scored it.
        for job in &jobs {
            if job.trace_id != 0 {
                trace::event(
                    "serve.batch.job",
                    &[
                        ("trace_id", job.trace_id.into()),
                        ("client_span", job.client_span.into()),
                    ],
                );
            }
        }

        // BatchPanic/RowPanic fire inside the isolated scorer; only this
        // thread consumes those sites, so the delta is race-free.
        let scorer_faults = |shared: &Shared| {
            shared.injector.fired(FaultSite::BatchPanic)
                + shared.injector.fired(FaultSite::RowPanic)
        };
        let faults_before = scorer_faults(shared);
        let outcome = score_rows_isolated(shared.pipeline.network(), &rows, &shared.injector);
        let inference = exec_start.elapsed();
        shared
            .metrics
            .faults_injected
            .add(scorer_faults(shared) - faults_before);

        let n = jobs.len();
        shared.metrics.batches.inc();
        shared.metrics.record_batch_size(n as u64);
        if outcome.batch_failed {
            shared.metrics.scorer_panics.inc();
            span.record("batch_failed", true);
        }
        shared.metrics.row_failures.add(outcome.row_failures);
        let ok_rows = outcome.scores.iter().filter(|s| s.is_ok()).count() as u64;
        shared.metrics.rows_scored.add(ok_rows);

        if let Ok(mut cache) = shared.cache.lock() {
            for (job, score) in jobs.iter().zip(&outcome.scores) {
                if let Ok(score) = score {
                    cache.insert(job.cache_key.clone(), *score);
                }
            }
        }
        for (job, score) in jobs.into_iter().zip(outcome.scores) {
            // A send error means the connection died or gave up on its
            // deadline; successful scores are already cached, so the
            // work is not wasted either way.
            let reply = match score {
                Ok(score) => Ok(ScoredReply {
                    score,
                    batch_size: n,
                    queue_wait: job.received_at.saturating_duration_since(job.enqueued_at),
                    batch_wait: exec_start.saturating_duration_since(job.received_at),
                    inference,
                }),
                Err(detail) => Err(ServeError::Internal { detail }),
            };
            let _ = job.reply.send(reply);
        }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener, tx: SyncSender<ScoreJob>) {
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.fire(FaultSite::AcceptReset) {
            // Close the connection right after accepting it: the client
            // sees an immediate EOF and must reconnect.
            drop(stream);
            continue;
        }
        workers.retain(|h| !h.is_finished());
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        let spawned = std::thread::Builder::new()
            .name("maleva-serve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(&shared, stream, &tx);
            });
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(e) => eprintln!("[maleva-serve] cannot spawn connection thread: {e}"),
        }
    }
    // Drain: wait for every live connection to finish its in-flight
    // request, then drop the master sender so the scorer can exit.
    for handle in workers {
        let _ = handle.join();
    }
    drop(tx);
}

enum LineStatus {
    /// A complete line is in the buffer (newline stripped by caller).
    Line,
    /// The peer closed the connection.
    Eof,
    /// Shutdown was observed between requests.
    Closing,
    /// The line exceeded the configured limit.
    TooLong,
}

fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    limit: usize,
    shutting_down: &AtomicBool,
) -> std::io::Result<LineStatus> {
    loop {
        if shutting_down.load(Ordering::SeqCst) {
            return Ok(LineStatus::Closing);
        }
        if buf.len() > limit {
            return Ok(LineStatus::TooLong);
        }
        // Cap each read so an oversized line is detected at `limit + 1`
        // bytes instead of buffering the whole thing.
        let budget = (limit + 1 - buf.len()) as u64;
        match reader.by_ref().take(budget).read_until(b'\n', buf) {
            Ok(0) => {
                return Ok(if buf.is_empty() {
                    LineStatus::Eof
                } else {
                    LineStatus::Line
                });
            }
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return Ok(LineStatus::Line);
                }
                // No newline yet: either the budget ran out (checked at
                // the top of the loop) or more bytes are coming.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(
    shared: &Arc<Shared>,
    stream: TcpStream,
    tx: &SyncSender<ScoreJob>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    // The sentinel's fallback client identity when requests carry no
    // explicit `client_id`.
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown-peer".to_string());
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let limit = shared.config.max_line_bytes;

    loop {
        buf.clear();
        if shared.fire(FaultSite::SlowRead) {
            std::thread::sleep(shared.injector.delay());
        }
        match read_line_bounded(&mut reader, &mut buf, limit, &shared.shutting_down)? {
            LineStatus::Eof | LineStatus::Closing => return Ok(()),
            LineStatus::TooLong => {
                // Typed error, then close: the stream is out of sync.
                respond_error(shared, &mut writer, &ServeError::LineTooLong { limit })?;
                return Ok(());
            }
            LineStatus::Line => {}
        }
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() {
            continue;
        }
        let mut span = Span::enter("serve.request");
        match protocol::parse_request(&line, shared.pipeline.features().dim()) {
            Err(e) => {
                span.record("cmd", "invalid");
                respond_error(shared, &mut writer, &e)?;
            }
            Ok(Request::Stats) => {
                span.record("cmd", "stats");
                write_line(&mut writer, &protocol::encode_stats(&snapshot(shared)))?;
            }
            Ok(Request::Metrics) => {
                span.record("cmd", "metrics");
                let entries = shared.cache.lock().map(|c| c.len()).unwrap_or(0);
                refresh_sentinel_gauge(shared);
                let text = shared.metrics.render_prometheus(entries);
                write_metrics_block(&mut writer, &text)?;
            }
            Ok(Request::Health) => {
                span.record("cmd", "health");
                write_line(
                    &mut writer,
                    &protocol::encode_health(&health_report(shared)),
                )?;
            }
            Ok(Request::Sentinel) => {
                span.record("cmd", "sentinel");
                refresh_sentinel_gauge(shared);
                write_line(
                    &mut writer,
                    &protocol::encode_sentinel(&sentinel_report(shared)),
                )?;
            }
            Ok(Request::Slo) => {
                span.record("cmd", "slo");
                let report = shared.slo.observe_and_evaluate(shared.metrics.registry());
                write_line(&mut writer, &protocol::encode_slo(&report))?;
            }
            Ok(Request::Shutdown) => {
                span.record("cmd", "shutdown");
                write_line(&mut writer, &protocol::encode_shutdown_ack())?;
                shared.trigger_shutdown();
                return Ok(());
            }
            Ok(Request::Score {
                counts,
                client_id,
                trace,
            }) => {
                span.record("cmd", "score");
                if let Some(t) = trace {
                    span.record("trace_id", t.trace_id);
                    if t.span_id != 0 {
                        span.record("client_span", t.span_id);
                    }
                }
                let cid = client_id.as_deref().unwrap_or(peer.as_str());
                handle_score(shared, &mut writer, tx, &counts, cid, trace, &mut span)?;
            }
        }
    }
}

/// Writes a multi-line Prometheus exposition block over the otherwise
/// line-oriented protocol, terminated by a `# EOF` marker line
/// (OpenMetrics convention) so clients know where the block ends.
fn write_metrics_block(writer: &mut TcpStream, text: &str) -> std::io::Result<()> {
    writer.write_all(text.as_bytes())?;
    if !text.ends_with('\n') {
        writer.write_all(b"\n")?;
    }
    writer.write_all(b"# EOF\n")?;
    writer.flush()
}

/// The resolved answer to one score request, carried from the staged
/// scoring logic ([`score_outcome`]) to the single serialization exit
/// ([`handle_score`]).
enum ScoreOutcome {
    /// A score to send; `faulted` routes the write through
    /// [`write_line_faulted`] (the historical behavior: only cache
    /// hits bypass the write-fault sites).
    Reply { resp: ScoreResponse, faulted: bool },
    /// A typed error to send (always via the faulted writer).
    Error(ServeError),
}

fn handle_score(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    tx: &SyncSender<ScoreJob>,
    counts: &[u32],
    client_id: &str,
    trace: Option<TraceContext>,
    span: &mut Span,
) -> std::io::Result<()> {
    shared.metrics.requests.inc();
    let mut stages = StageTimes::default();
    let outcome = score_outcome(shared, tx, counts, client_id, trace, span, &mut stages);

    // The single exit: encode + write is the `serialize` stage, after
    // which the full six-stage decomposition is recorded on the span
    // and into the `serve_stage_*_us` histograms.
    let serialize_start = Instant::now();
    let (line, faulted) = match &outcome {
        ScoreOutcome::Reply { resp, faulted } => (protocol::encode_score(resp), *faulted),
        ScoreOutcome::Error(err) => {
            shared.metrics.errors.inc();
            (protocol::encode_error(err), true)
        }
    };
    let result = if faulted {
        write_line_faulted(shared, writer, &line)
    } else {
        write_line(writer, &line)
    };
    stages.serialize = serialize_start.elapsed();
    shared.metrics.record_stages(&stages);
    let [queue_wait, batch_wait, cache_lookup, sentinel_check, inference, serialize] =
        stages.as_us();
    span.record("stage_queue_wait_us", queue_wait);
    span.record("stage_batch_wait_us", batch_wait);
    span.record("stage_cache_lookup_us", cache_lookup);
    span.record("stage_sentinel_check_us", sentinel_check);
    span.record("stage_inference_us", inference);
    span.record("stage_serialize_us", serialize);
    result
}

/// Runs the score pipeline — sentinel, cache, queue, batch reply — and
/// returns what to send, accumulating per-stage time into `stages`.
/// Performs no socket io, so [`handle_score`] can time serialization
/// as one stage.
fn score_outcome(
    shared: &Arc<Shared>,
    tx: &SyncSender<ScoreJob>,
    counts: &[u32],
    client_id: &str,
    trace: Option<TraceContext>,
    span: &mut Span,
    stages: &mut StageTimes,
) -> ScoreOutcome {
    let start = Instant::now();
    let features = shared.pipeline.features().transform_counts(counts);
    let cache_key = quantize(&features);

    // The sentinel rules *before* scoring, from recorded history alone,
    // so its decisions are a pure function of (seed, client history).
    let sentinel_on = shared.config.sentinel.enabled;
    let decision = if sentinel_on {
        let check = Instant::now();
        let decision = match shared.sentinel.lock() {
            Ok(mut s) => s.decide(client_id),
            Err(_) => SentinelDecision::Allow,
        };
        stages.sentinel_check += check.elapsed();
        decision
    } else {
        SentinelDecision::Allow
    };
    if let SentinelDecision::Throttle { retry_after_ms } = decision {
        shared.metrics.sentinel_throttled.inc();
        span.record("throttled", true);
        let check = Instant::now();
        sentinel_record(shared, client_id, cache_key, None);
        stages.sentinel_check += check.elapsed();
        return ScoreOutcome::Error(ServeError::Throttled { retry_after_ms });
    }
    let poison = matches!(decision, SentinelDecision::Poison);

    let lookup = Instant::now();
    let cached = shared
        .cache
        .lock()
        .ok()
        .and_then(|mut cache| cache.get(&cache_key));
    stages.cache_lookup += lookup.elapsed();
    if let Some(score) = cached {
        shared.metrics.cache_hits.inc();
        shared.metrics.record_latency(start.elapsed());
        span.record("cached", true);
        if sentinel_on {
            // History records the *true* verdict so later flip analysis
            // is about the model's boundary, not the poison stream.
            let check = Instant::now();
            sentinel_record(shared, client_id, cache_key.clone(), Some(score >= 0.5));
            stages.sentinel_check += check.elapsed();
        }
        let served = serve_score(shared, poison, score, &cache_key, span);
        return ScoreOutcome::Reply {
            resp: ScoreResponse::new(served, true, 0),
            faulted: false,
        };
    }
    shared.metrics.cache_misses.inc();
    span.record("cached", false);

    if shared.shutting_down.load(Ordering::SeqCst) {
        return ScoreOutcome::Error(ServeError::ShuttingDown);
    }

    let overloaded = |depth: u64| ServeError::Overloaded {
        capacity: shared.config.queue_capacity,
        retry_after_ms: suggested_retry_after_ms(
            depth,
            shared.config.max_batch,
            shared.config.batch_timeout,
        ),
    };

    // Admission control: shed by observed queue depth *before* pushing,
    // so a saturated scorer rejects cheaply instead of queueing work it
    // cannot finish in time.
    let depth = shared.metrics.queue_depth.get().max(0) as u64;
    if depth >= shared.config.shed_queue_depth.max(1) as u64 {
        shared.metrics.shed.inc();
        shared.metrics.overloaded.inc();
        span.record("shed", true);
        return ScoreOutcome::Error(overloaded(depth));
    }

    let sentinel_key = if sentinel_on {
        Some(cache_key.clone())
    } else {
        None
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut job = ScoreJob::new(features, cache_key, reply_tx);
    if let Some(t) = trace {
        job.trace_id = t.trace_id;
        job.client_span = t.span_id;
    }
    // Re-stamp right before the push so `queue_wait` starts at enqueue,
    // not at job construction.
    let enqueued = Instant::now();
    job.enqueued_at = enqueued;
    match tx.try_send(job) {
        Err(TrySendError::Full(_)) => {
            shared.metrics.overloaded.inc();
            span.record("overloaded", true);
            ScoreOutcome::Error(overloaded(shared.config.queue_capacity as u64))
        }
        Err(TrySendError::Disconnected(_)) => ScoreOutcome::Error(ServeError::ShuttingDown),
        Ok(()) => {
            shared.metrics.queue_depth.add(1);
            let deadline = shared.config.request_deadline;
            match reply_rx.recv_timeout(deadline) {
                Ok(Ok(reply)) => {
                    // The enqueue → reply wait decomposes into the
                    // scorer-measured queue and batch waits; everything
                    // else (the forward pass, reply fan-out, and the
                    // wake-up gap) is attributed to inference so the six
                    // stages always sum to the observed wait.
                    let waited = enqueued.elapsed();
                    stages.queue_wait += reply.queue_wait;
                    stages.batch_wait += reply.batch_wait;
                    stages.inference += waited.saturating_sub(reply.queue_wait + reply.batch_wait);
                    shared.metrics.record_latency(start.elapsed());
                    span.record("batch_size", reply.batch_size as u64);
                    let served = if let Some(key) = sentinel_key {
                        let check = Instant::now();
                        sentinel_record(shared, client_id, key.clone(), Some(reply.score >= 0.5));
                        stages.sentinel_check += check.elapsed();
                        serve_score(shared, poison, reply.score, &key, span)
                    } else {
                        reply.score
                    };
                    ScoreOutcome::Reply {
                        resp: ScoreResponse::new(served, false, reply.batch_size),
                        faulted: true,
                    }
                }
                Ok(Err(e)) => ScoreOutcome::Error(e),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Abandon the reply channel: the scorer's eventual
                    // send fails harmlessly and the connection stays in
                    // sync instead of hanging on a wedged scorer.
                    shared.metrics.deadline_exceeded.inc();
                    span.record("deadline_exceeded", true);
                    ScoreOutcome::Error(ServeError::DeadlineExceeded {
                        deadline_ms: deadline.as_millis() as u64,
                    })
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    ScoreOutcome::Error(ServeError::Internal {
                        detail: "scorer dropped the reply".to_string(),
                    })
                }
            }
        }
    }
}

/// Records one query in the sentinel and forwards its observations to
/// the metrics. No-op when the sentinel is disabled.
fn sentinel_record(shared: &Shared, client_id: &str, key: Vec<i64>, verdict: Option<bool>) {
    let obs = match shared.sentinel.lock() {
        Ok(mut s) => s.record(client_id, key, verdict),
        Err(_) => return,
    };
    if obs.near_duplicate {
        shared.metrics.sentinel_near_duplicates.inc();
    }
    if obs.verdict_flip {
        shared.metrics.sentinel_verdict_flips.inc();
    }
    if obs.newly_flagged {
        shared.metrics.sentinel_flagged.inc();
    }
}

/// The score actually sent to the client: the true score, or — for a
/// poison-flagged client — a deterministic seed-randomized one.
fn serve_score(shared: &Shared, poison: bool, score: f64, key: &[i64], span: &mut Span) -> f64 {
    if !poison {
        return score;
    }
    shared.metrics.sentinel_poisoned.inc();
    span.record("poisoned", true);
    poison_score(shared.config.sentinel.seed, key)
}

fn respond_error(shared: &Shared, writer: &mut TcpStream, err: &ServeError) -> std::io::Result<()> {
    shared.metrics.errors.inc();
    write_line_faulted(shared, writer, &protocol::encode_error(err))
}

fn health_report(shared: &Shared) -> HealthReport {
    let draining = shared.shutting_down.load(Ordering::SeqCst);
    let m = &shared.metrics;
    HealthReport {
        status: if draining { "draining" } else { "ok" },
        draining,
        queue_depth: m.queue_depth.get().max(0) as u64,
        shed_depth: shared.config.shed_queue_depth as u64,
        deadline_ms: shared.config.request_deadline.as_millis() as u64,
        scorer_panics: m.scorer_panics.get(),
        row_failures: m.row_failures.get(),
        overloaded: m.overloaded.get(),
        deadline_exceeded: m.deadline_exceeded.get(),
        faults: shared
            .injector
            .fired_counts()
            .into_iter()
            .map(|(name, fired)| (name.to_string(), fired))
            .collect(),
    }
}

/// Writes a response line on the score path, subject to write faults:
/// [`FaultSite::WriteReset`] drops the connection instead of writing
/// (the io error unwinds the connection thread), [`FaultSite::SlowWrite`]
/// splits the line into two flushed chunks with a pause between them.
fn write_line_faulted(shared: &Shared, writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    if shared.fire(FaultSite::WriteReset) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected fault: write reset",
        ));
    }
    if shared.fire(FaultSite::SlowWrite) {
        let bytes = line.as_bytes();
        let mid = bytes.len() / 2;
        writer.write_all(&bytes[..mid])?;
        writer.flush()?;
        std::thread::sleep(shared.injector.delay());
        writer.write_all(&bytes[mid..])?;
        writer.write_all(b"\n")?;
        return writer.flush();
    }
    write_line(writer, line)
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
