//! The sharded TCP scoring server.
//!
//! Thread layout:
//!
//! * **acceptor** — owns the `TcpListener` and pins each accepted
//!   connection to a shard by round-robin, handing the socket over a
//!   channel and poking that shard's [`crate::reactor::Waker`];
//! * **shard event loops** (`ServeConfig::shards` of them, see
//!   [`crate::shard`]) — each owns its connections, batch queue, LRU
//!   cache, sentinel window, and metrics outright, multiplexing
//!   non-blocking reads over a poll-based readiness layer
//!   ([`crate::reactor`]); the hot path never takes a lock another
//!   shard can touch;
//! * **scorers** (one per shard) — drain micro-batches from their
//!   shard's queue ([`crate::batch::collect_batch`]) and run one
//!   batched forward pass per batch against the current
//!   [`crate::reload::ModelSlot`] generation, then fan replies back
//!   out and wake the owning shard.
//!
//! Cross-shard views (`{"cmd": "stats"}`, the Prometheus exposition,
//! health, SLO evaluation) are merged on demand: every shard takes one
//! coherent snapshot, [`MetricsSnapshot::merge`] combines them, and the
//! aggregate registry absorbs the result — so the merged counters
//! always equal the per-shard sums, even mid-drain.
//!
//! Shutdown (`{"cmd": "shutdown"}` or [`ServerHandle::shutdown`]) is a
//! drain, not an abort: the acceptor stops accepting, shards close idle
//! connections but keep serving in-flight requests, and each scorer
//! keeps scoring until its queue is empty and disconnected, so every
//! enqueued request still receives its response.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use maleva_core::DetectorPipeline;
use maleva_obs::metrics::Gauge;
use maleva_obs::slo::SloSpec;
use maleva_obs::trace;

use crate::batch::ScoreJob;
use crate::cache::LruCache;
use crate::error::ServeError;
use crate::fault::{FaultInjector, FaultPlan, FaultSite};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::protocol::HealthReport;
use crate::reactor::Poller;
use crate::reload::{load_model, ModelSlot};
use crate::sentinel::{Sentinel, SentinelConfig, SentinelReport};
use crate::shard::{self, ShardState};
use crate::slo::{default_serve_slos, SloReport, SloRuntime};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Independent shard event loops; connections are pinned to a
    /// shard round-robin at accept. Each shard owns its own queue,
    /// cache, sentinel window, and metrics. 1 preserves the exact
    /// single-domain behavior of earlier versions.
    pub shards: usize,
    /// Maximum rows per batched forward pass (per shard).
    pub max_batch: usize,
    /// How long the scorer waits for a batch to fill after the first
    /// job arrives.
    pub batch_timeout: Duration,
    /// Bounded per-shard scoring-queue capacity; a full queue yields
    /// [`ServeError::Overloaded`] instead of blocking the client.
    pub queue_capacity: usize,
    /// Per-shard LRU score-cache capacity in entries; 0 disables the
    /// cache.
    pub cache_capacity: usize,
    /// Maximum request-line length in bytes.
    pub max_line_bytes: usize,
    /// Per-request deadline: a score request not answered within this
    /// budget gets a typed `deadline_exceeded` error instead of a
    /// connection that hangs on a slow or wedged scorer.
    pub request_deadline: Duration,
    /// Admission-control threshold: when a shard's scoring queue
    /// already holds at least this many jobs, new misses are shed with
    /// `overloaded` (plus a `retry_after_ms` hint) *before* the queue
    /// fills. Defaults to `queue_capacity` (shed only when full).
    pub shed_queue_depth: usize,
    /// Deterministic fault-injection plan; disabled by default.
    pub faults: FaultPlan,
    /// Extraction-sentinel configuration; disabled by default.
    pub sentinel: SentinelConfig,
    /// SLO specs evaluated by `{"cmd": "slo"}`; defaults to
    /// [`default_serve_slos`]. Empty disables the alarm engine.
    pub slos: Vec<SloSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 1,
            max_batch: 32,
            batch_timeout: Duration::from_millis(2),
            queue_capacity: 1024,
            cache_capacity: 4096,
            max_line_bytes: 1 << 20,
            request_deadline: Duration::from_secs(30),
            shed_queue_depth: 1024,
            faults: FaultPlan::disabled(),
            sentinel: SentinelConfig::default(),
            slos: default_serve_slos(),
        }
    }
}

/// Suggested client wait before retrying after an overload rejection:
/// roughly how long the queued work ahead of the request will take to
/// drain (batches ahead x batch timeout), capped at one second so the
/// hint never parks clients for long.
pub(crate) fn suggested_retry_after_ms(
    queue_depth: u64,
    max_batch: usize,
    batch_timeout: Duration,
) -> u64 {
    let batches_ahead = queue_depth / max_batch.max(1) as u64 + 1;
    let per_batch_ms = (batch_timeout.as_millis() as u64).max(1);
    (batches_ahead * per_batch_ms).min(1_000)
}

/// The idle poll tick: how often a shard wakes with no readiness
/// events to observe the shutdown flag and pending deadlines.
pub(crate) const READ_TICK: Duration = Duration::from_millis(50);

pub(crate) struct Shared {
    pub(crate) pipeline: DetectorPipeline,
    pub(crate) config: ServeConfig,
    /// The swappable model all shards score against.
    pub(crate) model: ModelSlot,
    /// The aggregate registry behind the Prometheus exposition and the
    /// SLO runtime; refreshed from per-shard snapshots on demand.
    pub(crate) aggregate: Metrics,
    pub(crate) model_generation: Arc<Gauge>,
    /// Serializes refresh() so aggregate absorbs are never interleaved.
    refresh_lock: Mutex<()>,
    /// Serializes reloads so load+validate+install is atomic.
    reload_lock: Mutex<()>,
    pub(crate) shards: Vec<Arc<ShardState>>,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) addr: SocketAddr,
    /// One injector shared by every thread so chaos plans see one
    /// global per-site schedule, exactly as in the unsharded server.
    pub(crate) injector: FaultInjector,
    pub(crate) slo: SloRuntime,
}

impl Shared {
    /// [`FaultInjector::should_fire`] plus the faults-injected metric,
    /// attributed to the shard whose hot path hit the site.
    pub(crate) fn fire(&self, metrics: &Metrics, site: FaultSite) -> bool {
        let fired = self.injector.should_fire(site);
        if fired {
            metrics.faults_injected.inc();
        }
        fired
    }

    pub(crate) fn trigger_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            for shard in &self.shards {
                shard.waker.wake();
            }
            // Unblock the acceptor with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        }
    }
}

/// Takes one coherent per-shard snapshot vector, merges it, and raises
/// the aggregate registry (exposition, SLO inputs) to the merged
/// totals. Returns `(merged, per_shard)` — both derived from the SAME
/// snapshots, so a `stats` body and its `shards` array can never
/// disagree, even taken mid-drain.
pub(crate) fn refresh(shared: &Shared) -> (MetricsSnapshot, Vec<MetricsSnapshot>) {
    let _guard = match shared.refresh_lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let per_shard: Vec<MetricsSnapshot> = shared.shards.iter().map(|s| s.snapshot()).collect();
    let merged = MetricsSnapshot::merge(&per_shard);
    shared.aggregate.absorb(&merged);
    shared
        .model_generation
        .set(shared.model.generation().min(i64::MAX as u64) as i64);
    (merged, per_shard)
}

/// Refreshes the aggregate registry, then evaluates the SLO alarms
/// against it.
pub(crate) fn evaluate_slo(shared: &Shared) -> SloReport {
    let _ = refresh(shared);
    shared.slo.observe_and_evaluate(shared.aggregate.registry())
}

/// Loads, validates, and atomically installs the model at `path`.
/// Serialized under the reload lock; on any error the current
/// generation keeps serving untouched (no torn swap).
pub(crate) fn do_reload(shared: &Shared, path: &str) -> Result<(u64, usize), ServeError> {
    let _guard = match shared.reload_lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let network = load_model(path, &shared.pipeline)?;
    let params = network.param_count();
    let generation = shared.model.install(network);
    shared
        .model_generation
        .set(generation.min(i64::MAX as u64) as i64);
    trace::event(
        "serve.reload",
        &[
            ("generation", generation.into()),
            ("params", (params as u64).into()),
        ],
    );
    Ok((generation, params))
}

pub(crate) fn health_report(shared: &Shared) -> HealthReport {
    let draining = shared.shutting_down.load(Ordering::SeqCst);
    let (merged, _) = refresh(shared);
    HealthReport {
        status: if draining { "draining" } else { "ok" },
        draining,
        queue_depth: merged.queue_depth,
        shed_depth: shared.config.shed_queue_depth as u64,
        deadline_ms: shared.config.request_deadline.as_millis() as u64,
        scorer_panics: merged.scorer_panics,
        row_failures: merged.row_failures,
        overloaded: merged.overloaded,
        deadline_exceeded: merged.deadline_exceeded,
        model_generation: shared.model.generation(),
        faults: shared
            .injector
            .fired_counts()
            .into_iter()
            .map(|(name, fired)| (name.to_string(), fired))
            .collect(),
    }
}

pub(crate) fn sentinel_report(shared: &Shared) -> SentinelReport {
    let mut reports: Vec<SentinelReport> = shared
        .shards
        .iter()
        .map(|s| match s.sentinel.lock() {
            Ok(sentinel) => sentinel.report(),
            Err(poisoned) => poisoned.into_inner().report(),
        })
        .collect();
    if reports.len() == 1 {
        return reports.pop().expect("one report");
    }
    // Clients are pinned to shards by connection, so per-client rows
    // never split across reports: concatenation plus a stable sort is
    // an exact merge.
    let mut merged = SentinelReport {
        enabled: shared.config.sentinel.enabled,
        action: reports
            .first()
            .map(|r| r.action.clone())
            .unwrap_or_default(),
        tracked_clients: 0,
        flagged_clients: 0,
        clients: Vec::new(),
    };
    for report in reports {
        merged.tracked_clients += report.tracked_clients;
        merged.flagged_clients += report.flagged_clients;
        merged.clients.extend(report.clients);
    }
    merged.clients.sort_by(|a, b| a.client_id.cmp(&b.client_id));
    merged
}

/// A running server: its address, metrics access, reload and shutdown
/// control.
///
/// Dropping the handle shuts the server down (best effort, joining all
/// threads); call [`ServerHandle::join`] to instead block until a
/// client sends `{"cmd": "shutdown"}`.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    shard_threads: Vec<std::thread::JoinHandle<()>>,
    scorer_threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A point-in-time metrics snapshot, merged across shards.
    pub fn metrics(&self) -> MetricsSnapshot {
        refresh(&self.shared).0
    }

    /// Per-site injected-fault counters, `(site, fired)` in stable
    /// order (all zero when injection is disabled).
    pub fn fault_counts(&self) -> Vec<(&'static str, u64)> {
        self.shared.injector.fired_counts()
    }

    /// The same health report served to `{"cmd": "health"}` clients.
    pub fn health(&self) -> HealthReport {
        health_report(&self.shared)
    }

    /// The same sentinel report served to `{"cmd": "sentinel"}` clients.
    pub fn sentinel(&self) -> SentinelReport {
        sentinel_report(&self.shared)
    }

    /// Evaluates the SLO burn-rate alarms now — the same report served
    /// to `{"cmd": "slo"}` clients.
    pub fn slo(&self) -> SloReport {
        evaluate_slo(&self.shared)
    }

    /// Hot-swaps the model from the artifact at `path` — the same
    /// atomic swap `{"cmd": "reload"}` performs. Returns the new
    /// generation.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ReloadFailed`] when the artifact cannot be
    /// loaded or does not match the serving pipeline; the current
    /// generation keeps serving.
    pub fn reload(&self, path: &str) -> Result<u64, ServeError> {
        do_reload(&self.shared, path).map(|(generation, _)| generation)
    }

    /// The generation of the model currently serving (0 = boot model).
    pub fn generation(&self) -> u64 {
        self.shared.model.generation()
    }

    /// Whether a shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Initiates a graceful drain and waits for all threads to finish.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shared.trigger_shutdown();
        self.join_threads();
        refresh(&self.shared).0
    }

    /// Blocks until the server shuts down (e.g. a client sent
    /// `{"cmd": "shutdown"}`), then returns the final metrics.
    pub fn join(mut self) -> MetricsSnapshot {
        self.join_threads();
        refresh(&self.shared).0
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.shard_threads.drain(..) {
            let _ = h.join();
        }
        for h in self.scorer_threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.shard_threads.is_empty() {
            self.shared.trigger_shutdown();
            self.join_threads();
        }
    }
}

/// Binds the listener and spawns the acceptor plus one event-loop and
/// one scorer thread per shard.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable, or the error
/// from creating a shard's poller or threads.
pub fn spawn(pipeline: DetectorPipeline, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shard_count = config.shards.max(1);
    let max_batch = config.max_batch.max(1);
    let batch_timeout = config.batch_timeout;
    let queue_capacity = config.queue_capacity.max(1);

    let injector = FaultInjector::new(config.faults.clone());
    let aggregate = Metrics::new();
    let slo = SloRuntime::new(config.slos.clone(), aggregate.registry());
    let model_generation = aggregate.registry().gauge(
        "serve_model_generation",
        "Generation of the model currently serving (0 = boot model).",
    );
    let model = ModelSlot::new(pipeline.network().clone());

    /// The per-shard channel ends handed to that shard's threads.
    type Plumbing = (
        Poller,
        mpsc::Receiver<TcpStream>,
        mpsc::Receiver<ScoreJob>,
        mpsc::SyncSender<ScoreJob>,
    );
    let mut shards: Vec<Arc<ShardState>> = Vec::with_capacity(shard_count);
    let mut plumbing: Vec<Plumbing> = Vec::with_capacity(shard_count);
    for index in 0..shard_count {
        let (poller, waker) = Poller::new()?;
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let (job_tx, job_rx) = mpsc::sync_channel::<ScoreJob>(queue_capacity);
        shards.push(Arc::new(ShardState {
            index,
            metrics: Metrics::new(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            sentinel: Mutex::new(Sentinel::new(config.sentinel.clone())),
            waker,
            conn_tx,
        }));
        plumbing.push((poller, conn_rx, job_rx, job_tx));
    }

    let shared = Arc::new(Shared {
        pipeline,
        config,
        model,
        aggregate,
        model_generation,
        refresh_lock: Mutex::new(()),
        reload_lock: Mutex::new(()),
        shards,
        shutting_down: AtomicBool::new(false),
        addr,
        injector,
        slo,
    });

    let mut shard_threads = Vec::with_capacity(shard_count);
    let mut scorer_threads = Vec::with_capacity(shard_count);
    for (index, (poller, conn_rx, job_rx, job_tx)) in plumbing.into_iter().enumerate() {
        let scorer = {
            let shared = Arc::clone(&shared);
            let shard = Arc::clone(&shared.shards[index]);
            std::thread::Builder::new()
                .name(format!("maleva-serve-scorer-{index}"))
                .spawn(move || {
                    shard::scorer_loop(&shared, &shard, &job_rx, max_batch, batch_timeout)
                })?
        };
        scorer_threads.push(scorer);
        let looper = {
            let shared = Arc::clone(&shared);
            let shard = Arc::clone(&shared.shards[index]);
            std::thread::Builder::new()
                .name(format!("maleva-serve-shard-{index}"))
                .spawn(move || shard::shard_loop(&shared, &shard, poller, &conn_rx, job_tx))?
        };
        shard_threads.push(looper);
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("maleva-serve-acceptor".to_string())
            .spawn(move || acceptor_loop(&shared, &listener))?
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        shard_threads,
        scorer_threads,
    })
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shard = &shared.shards[next];
        next = (next + 1) % shared.shards.len();
        if shared.fire(&shard.metrics, FaultSite::AcceptReset) {
            // Close the connection right after accepting it: the client
            // sees an immediate EOF and must reconnect.
            drop(stream);
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        stream.set_nodelay(true).ok();
        // A send error means the shard already drained for shutdown.
        if shard.conn_tx.send(stream).is_ok() {
            shard.waker.wake();
        }
    }
}
