//! Per-shard event loop and scorer.
//!
//! Each shard is a single thread multiplexing all of its connections
//! over the poll-based readiness layer in [`crate::reactor`]. The loop
//! per iteration: adopt newly pinned connections, poll for readability
//! (timeout capped by the nearest pending request deadline), drain
//! non-blocking reads into per-connection buffers, settle completed or
//! expired in-flight requests, then process buffered lines. A
//! connection has at most one score request in flight; while it waits
//! the shard simply stops polling that socket, so pipelined bytes sit
//! in the kernel buffer under normal TCP backpressure.
//!
//! Everything a request touches on the hot path — the scoring queue,
//! the LRU cache, the sentinel window, the metrics — belongs to the
//! shard, so shards never contend with each other. The only shared
//! state is the swappable [`crate::reload::ModelSlot`] (an atomic
//! generation read per cache lookup, one `Arc` clone per batch) and
//! the fault injector.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use maleva_obs::trace::{self, Span};

use crate::batch::{collect_batch, score_rows_isolated, ScoreJob, ScoredReply};
use crate::cache::{quantize, LruCache};
use crate::error::ServeError;
use crate::fault::FaultSite;
use crate::metrics::{Metrics, MetricsSnapshot, StageTimes};
use crate::protocol::{self, Request, ScoreResponse, TraceContext};
use crate::reactor::{self, Event, Interest, Poller, Waker};
use crate::sentinel::{poison_score, Sentinel, SentinelDecision};
use crate::server::{self, suggested_retry_after_ms, Shared, READ_TICK};

/// Everything one shard owns: its metrics, cache, sentinel window, and
/// the handles other threads use to reach it (connection hand-off plus
/// waker).
pub(crate) struct ShardState {
    /// Stable shard index (the acceptor's round-robin position).
    pub(crate) index: usize,
    /// This shard's private metrics registry; merged on demand by
    /// [`crate::server::refresh`].
    pub(crate) metrics: Metrics,
    /// Score cache, keyed by quantized features; values carry the model
    /// generation that produced them so a reload lazily invalidates
    /// stale entries on lookup.
    pub(crate) cache: Mutex<LruCache<Vec<i64>, (f64, u64)>>,
    /// Per-client extraction-sentinel window for connections pinned to
    /// this shard.
    pub(crate) sentinel: Mutex<Sentinel>,
    /// Wakes the shard's poll loop (new connection, finished batch,
    /// shutdown).
    pub(crate) waker: Waker,
    /// Where the acceptor hands over accepted sockets.
    pub(crate) conn_tx: mpsc::Sender<TcpStream>,
}

impl ShardState {
    /// One coherent snapshot of this shard's metrics, with the cache
    /// and sentinel gauges refreshed first.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.cache.lock().map(|c| c.len()).unwrap_or(0);
        if let Ok(sentinel) = self.sentinel.lock() {
            self.metrics
                .sentinel_tracked_clients
                .set(sentinel.tracked_clients().min(i64::MAX as usize) as i64);
        }
        self.metrics.snapshot(entries)
    }
}

/// One connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// The sentinel's fallback client identity when requests carry no
    /// explicit `client_id`.
    peer: String,
    /// Bytes read but not yet consumed as lines.
    inbuf: Vec<u8>,
    /// The in-flight score request, if any (at most one per
    /// connection, matching the request/response protocol).
    pending: Option<Pending>,
    /// The peer closed its write side; remaining buffered lines are
    /// still processed (a final unterminated line counts).
    eof: bool,
    /// Close and drop at the end of the iteration.
    dead: bool,
}

/// A score request waiting on its shard scorer.
struct Pending {
    rx: mpsc::Receiver<Result<ScoredReply, ServeError>>,
    span: Span,
    stages: StageTimes,
    /// Request start, for end-to-end latency.
    start: Instant,
    /// When the job was pushed onto the queue (`queue_wait` epoch).
    enqueued: Instant,
    /// Absolute deadline; past it the request resolves to a typed
    /// `deadline_exceeded` error and the reply channel is abandoned.
    deadline: Instant,
    /// Cache key to record in the sentinel on completion (`None` when
    /// the sentinel is disabled).
    sentinel_key: Option<Vec<i64>>,
    /// Whether the sentinel flagged this client for verdict poisoning.
    poison: bool,
    client_id: String,
}

/// How a settled [`Pending`] resolved.
enum Completion {
    Reply(Result<ScoredReply, ServeError>),
    Deadline,
    ScorerGone,
}

/// The resolved answer to one score request, carried from the staged
/// scoring logic to the single serialization exit ([`finish_score`]).
enum ScoreOutcome {
    /// A score to send; `faulted` routes the write through
    /// [`write_line_faulted`] (the historical behavior: only cache
    /// hits bypass the write-fault sites).
    Reply { resp: ScoreResponse, faulted: bool },
    /// A typed error to send (always via the faulted writer).
    Error(ServeError),
}

/// A score request either resolved synchronously (sentinel throttle,
/// cache hit, shed, enqueue failure) or went in flight. The request
/// span rides along either way.
enum ScoreStep {
    Done(ScoreOutcome, Span, StageTimes),
    Pending(Pending),
}

/// How long a blocked write may wait for the socket to drain before
/// the connection is declared dead.
const WRITE_STALL_CAP: Duration = Duration::from_secs(10);

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

pub(crate) fn shard_loop(
    shared: &Arc<Shared>,
    shard: &ShardState,
    mut poller: Poller,
    conn_rx: &Receiver<TcpStream>,
    job_tx: SyncSender<ScoreJob>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    loop {
        // Adopt newly pinned connections (dropped mid-drain: the
        // acceptor may race the shutdown flag by one hand-off).
        let mut shutting_down = shared.shutting_down.load(Ordering::SeqCst);
        while let Ok(stream) = conn_rx.try_recv() {
            if shutting_down {
                continue;
            }
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "unknown-peer".to_string());
            conns.push(Conn {
                stream,
                peer,
                inbuf: Vec::new(),
                pending: None,
                eof: false,
                dead: false,
            });
        }

        // Poll connections that can accept a new request; in-flight and
        // closed ones are skipped, leaving backpressure to TCP.
        {
            let sources: Vec<(usize, &TcpStream, Interest)> = conns
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.dead && !c.eof && c.pending.is_none())
                .map(|(i, c)| (i, &c.stream, Interest::Readable))
                .collect();
            let timeout = poll_timeout(&conns);
            let _ = poller.poll(&sources, Some(timeout), &mut events);
        }
        for event in &events {
            if event.readable {
                read_ready(&mut conns[event.token]);
            }
        }

        // Settle in-flight requests (batch finished, scorer died, or
        // deadline passed), then process whatever lines are buffered.
        for conn in conns.iter_mut() {
            if conn.pending.is_some() {
                settle_pending(shared, shard, conn);
            }
        }
        for conn in conns.iter_mut() {
            process_lines(shared, shard, &job_tx, conn);
        }

        // Drain: keep connections with in-flight work until their
        // replies land; close everything idle.
        shutting_down = shared.shutting_down.load(Ordering::SeqCst);
        if shutting_down {
            for conn in conns.iter_mut() {
                if conn.pending.is_none() {
                    conn.dead = true;
                }
            }
        }
        conns.retain(|c| !(c.dead || c.eof && c.pending.is_none() && c.inbuf.is_empty()));
        if shutting_down && conns.is_empty() {
            while conn_rx.try_recv().is_ok() {}
            // Dropping `job_tx` (by returning) disconnects the queue so
            // the scorer drains what is left and exits.
            drop(job_tx);
            return;
        }
    }
}

/// The poll timeout: the idle tick, shortened to the nearest pending
/// deadline so an expired request is answered promptly even if the
/// scorer is wedged.
fn poll_timeout(conns: &[Conn]) -> Duration {
    let now = Instant::now();
    let mut timeout = READ_TICK;
    for conn in conns {
        if let Some(pending) = &conn.pending {
            timeout = timeout.min(pending.deadline.saturating_duration_since(now));
        }
    }
    timeout
}

/// Drains the socket into the connection's line buffer.
fn read_ready(conn: &mut Conn) {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// What [`extract_line`] produced this call.
enum LineStatus {
    /// A complete request line (newline stripped; `\r\n` tolerated).
    Line(String),
    /// The line exceeded the configured limit.
    TooLong,
    /// No complete line buffered yet.
    NotYet,
}

/// Pops the next line off the buffer. An oversized line is detected as
/// soon as `limit + 1` bytes are buffered without a newline, without
/// waiting for the rest. After EOF a final unterminated line is served.
fn extract_line(conn: &mut Conn, limit: usize) -> LineStatus {
    if let Some(pos) = conn.inbuf.iter().position(|&b| b == b'\n') {
        if pos > limit {
            return LineStatus::TooLong;
        }
        let mut line: Vec<u8> = conn.inbuf.drain(..=pos).collect();
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        return LineStatus::Line(String::from_utf8_lossy(&line).into_owned());
    }
    if conn.inbuf.len() > limit {
        return LineStatus::TooLong;
    }
    if conn.eof && !conn.inbuf.is_empty() {
        let line = String::from_utf8_lossy(&conn.inbuf).into_owned();
        conn.inbuf.clear();
        return LineStatus::Line(line);
    }
    LineStatus::NotYet
}

/// Processes buffered lines until the connection blocks on an
/// in-flight request, runs dry, or dies.
fn process_lines(
    shared: &Arc<Shared>,
    shard: &ShardState,
    job_tx: &SyncSender<ScoreJob>,
    conn: &mut Conn,
) {
    let limit = shared.config.max_line_bytes;
    while !conn.dead && conn.pending.is_none() {
        match extract_line(conn, limit) {
            LineStatus::NotYet => return,
            LineStatus::TooLong => {
                // Typed error, then close: the stream is out of sync.
                respond_error(shared, shard, conn, &ServeError::LineTooLong { limit });
                conn.dead = true;
                return;
            }
            LineStatus::Line(line) => {
                if shared.fire(&shard.metrics, FaultSite::SlowRead) {
                    std::thread::sleep(shared.injector.delay());
                }
                process_line(shared, shard, job_tx, conn, &line);
            }
        }
    }
}

fn process_line(
    shared: &Arc<Shared>,
    shard: &ShardState,
    job_tx: &SyncSender<ScoreJob>,
    conn: &mut Conn,
    line: &str,
) {
    if line.trim().is_empty() {
        return;
    }
    let mut span = Span::enter("serve.request");
    match protocol::parse_request(line, shared.pipeline.features().dim()) {
        Err(e) => {
            span.record("cmd", "invalid");
            respond_error(shared, shard, conn, &e);
        }
        Ok(Request::Stats) => {
            span.record("cmd", "stats");
            // Both the merged body and the `shards` array come from the
            // SAME snapshot vector, so they agree even mid-drain.
            let (merged, per_shard) = server::refresh(shared);
            send_line(
                shared,
                shard,
                conn,
                &protocol::encode_stats_with_shards(&merged, &per_shard),
                false,
            );
        }
        Ok(Request::Metrics) => {
            span.record("cmd", "metrics");
            let (merged, _) = server::refresh(shared);
            let text = shared.aggregate.render_prometheus(merged.cache_entries);
            write_metrics_block(conn, &text);
        }
        Ok(Request::Health) => {
            span.record("cmd", "health");
            send_line(
                shared,
                shard,
                conn,
                &protocol::encode_health(&server::health_report(shared)),
                false,
            );
        }
        Ok(Request::Sentinel) => {
            span.record("cmd", "sentinel");
            send_line(
                shared,
                shard,
                conn,
                &protocol::encode_sentinel(&server::sentinel_report(shared)),
                false,
            );
        }
        Ok(Request::Slo) => {
            span.record("cmd", "slo");
            let report = server::evaluate_slo(shared);
            send_line(shared, shard, conn, &protocol::encode_slo(&report), false);
        }
        Ok(Request::Reload { path }) => {
            span.record("cmd", "reload");
            match server::do_reload(shared, &path) {
                Ok((generation, params)) => {
                    span.record("generation", generation);
                    send_line(
                        shared,
                        shard,
                        conn,
                        &protocol::encode_reload_ack(generation, params),
                        false,
                    );
                }
                Err(e) => respond_error(shared, shard, conn, &e),
            }
        }
        Ok(Request::Shutdown) => {
            span.record("cmd", "shutdown");
            send_line(shared, shard, conn, &protocol::encode_shutdown_ack(), false);
            shared.trigger_shutdown();
            conn.dead = true;
        }
        Ok(Request::Score {
            counts,
            client_id,
            trace,
        }) => {
            span.record("cmd", "score");
            if let Some(t) = trace {
                span.record("trace_id", t.trace_id);
                if t.span_id != 0 {
                    span.record("client_span", t.span_id);
                }
            }
            let cid = client_id.unwrap_or_else(|| conn.peer.clone());
            handle_score(shared, shard, job_tx, conn, &counts, &cid, trace, span);
        }
    }
}

// ---------------------------------------------------------------------------
// Score path
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn handle_score(
    shared: &Arc<Shared>,
    shard: &ShardState,
    job_tx: &SyncSender<ScoreJob>,
    conn: &mut Conn,
    counts: &[u32],
    client_id: &str,
    trace: Option<TraceContext>,
    span: Span,
) {
    shard.metrics.requests.inc();
    let start = Instant::now();
    match score_step(shared, shard, job_tx, counts, client_id, trace, span, start) {
        ScoreStep::Done(outcome, mut span, mut stages) => {
            finish_score(shared, shard, conn, &outcome, &mut stages, &mut span);
        }
        ScoreStep::Pending(pending) => conn.pending = Some(pending),
    }
}

/// Runs the synchronous part of the score pipeline — sentinel, cache,
/// admission control, enqueue — and either resolves the request or
/// leaves it in flight, accumulating per-stage time as it goes.
#[allow(clippy::too_many_arguments)]
fn score_step(
    shared: &Arc<Shared>,
    shard: &ShardState,
    job_tx: &SyncSender<ScoreJob>,
    counts: &[u32],
    client_id: &str,
    trace: Option<TraceContext>,
    mut span: Span,
    start: Instant,
) -> ScoreStep {
    let mut stages = StageTimes::default();
    let features = shared.pipeline.features().transform_counts(counts);
    let cache_key = quantize(&features);

    // The sentinel rules *before* scoring, from recorded history alone,
    // so its decisions are a pure function of (seed, client history).
    let sentinel_on = shared.config.sentinel.enabled;
    let decision = if sentinel_on {
        let check = Instant::now();
        let decision = match shard.sentinel.lock() {
            Ok(mut s) => s.decide(client_id),
            Err(_) => SentinelDecision::Allow,
        };
        stages.sentinel_check += check.elapsed();
        decision
    } else {
        SentinelDecision::Allow
    };
    if let SentinelDecision::Throttle { retry_after_ms } = decision {
        shard.metrics.sentinel_throttled.inc();
        span.record("throttled", true);
        let check = Instant::now();
        sentinel_record(shard, client_id, cache_key, None);
        stages.sentinel_check += check.elapsed();
        return ScoreStep::Done(
            ScoreOutcome::Error(ServeError::Throttled { retry_after_ms }),
            span,
            stages,
        );
    }
    let poison = matches!(decision, SentinelDecision::Poison);

    // A cache entry is only valid for the generation that produced it;
    // entries from before a reload read as misses and are overwritten
    // when the re-scored batch lands (lazy invalidation).
    let lookup = Instant::now();
    let generation = shared.model.generation();
    let cached = shard
        .cache
        .lock()
        .ok()
        .and_then(|mut cache| cache.get(&cache_key))
        .filter(|(_, cached_generation)| *cached_generation == generation)
        .map(|(score, _)| score);
    stages.cache_lookup += lookup.elapsed();
    if let Some(score) = cached {
        shard.metrics.cache_hits.inc();
        shard.metrics.record_latency(start.elapsed());
        span.record("cached", true);
        if sentinel_on {
            // History records the *true* verdict so later flip analysis
            // is about the model's boundary, not the poison stream.
            let check = Instant::now();
            sentinel_record(shard, client_id, cache_key.clone(), Some(score >= 0.5));
            stages.sentinel_check += check.elapsed();
        }
        let served = serve_score(shared, shard, poison, score, &cache_key, &mut span);
        return ScoreStep::Done(
            ScoreOutcome::Reply {
                resp: ScoreResponse::new(served, true, 0).with_generation(generation),
                faulted: false,
            },
            span,
            stages,
        );
    }
    shard.metrics.cache_misses.inc();
    span.record("cached", false);

    if shared.shutting_down.load(Ordering::SeqCst) {
        return ScoreStep::Done(ScoreOutcome::Error(ServeError::ShuttingDown), span, stages);
    }

    let overloaded = |depth: u64| ServeError::Overloaded {
        capacity: shared.config.queue_capacity,
        retry_after_ms: suggested_retry_after_ms(
            depth,
            shared.config.max_batch,
            shared.config.batch_timeout,
        ),
    };

    // Admission control: shed by observed queue depth *before* pushing,
    // so a saturated scorer rejects cheaply instead of queueing work it
    // cannot finish in time.
    let depth = shard.metrics.queue_depth.get().max(0) as u64;
    if depth >= shared.config.shed_queue_depth.max(1) as u64 {
        shard.metrics.shed.inc();
        shard.metrics.overloaded.inc();
        span.record("shed", true);
        return ScoreStep::Done(ScoreOutcome::Error(overloaded(depth)), span, stages);
    }

    let sentinel_key = if sentinel_on {
        Some(cache_key.clone())
    } else {
        None
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut job = ScoreJob::new(features, cache_key, reply_tx);
    if let Some(t) = trace {
        job.trace_id = t.trace_id;
        job.client_span = t.span_id;
    }
    // Re-stamp right before the push so `queue_wait` starts at enqueue,
    // not at job construction.
    let enqueued = Instant::now();
    job.enqueued_at = enqueued;
    match job_tx.try_send(job) {
        Err(TrySendError::Full(_)) => {
            shard.metrics.overloaded.inc();
            span.record("overloaded", true);
            ScoreStep::Done(
                ScoreOutcome::Error(overloaded(shared.config.queue_capacity as u64)),
                span,
                stages,
            )
        }
        Err(TrySendError::Disconnected(_)) => {
            ScoreStep::Done(ScoreOutcome::Error(ServeError::ShuttingDown), span, stages)
        }
        Ok(()) => {
            shard.metrics.queue_depth.add(1);
            ScoreStep::Pending(Pending {
                rx: reply_rx,
                span,
                stages,
                start,
                enqueued,
                deadline: enqueued + shared.config.request_deadline,
                sentinel_key,
                poison,
                client_id: client_id.to_string(),
            })
        }
    }
}

/// Checks whether the connection's in-flight request resolved — a
/// scorer reply arrived, the scorer vanished, or the deadline passed —
/// and if so writes the response.
fn settle_pending(shared: &Arc<Shared>, shard: &ShardState, conn: &mut Conn) {
    let completion = {
        let pending = conn.pending.as_ref().expect("settle without pending");
        match pending.rx.try_recv() {
            Ok(result) => Some(Completion::Reply(result)),
            Err(mpsc::TryRecvError::Empty) => {
                if Instant::now() >= pending.deadline {
                    Some(Completion::Deadline)
                } else {
                    None
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => Some(Completion::ScorerGone),
        }
    };
    let Some(completion) = completion else { return };
    let mut pending = conn.pending.take().expect("settle without pending");
    let outcome = match completion {
        Completion::Reply(Ok(reply)) => {
            // The enqueue → reply wait decomposes into the
            // scorer-measured queue and batch waits; everything else
            // (the forward pass, reply fan-out, and the wake-up gap) is
            // attributed to inference so the six stages always sum to
            // the observed wait.
            let waited = pending.enqueued.elapsed();
            pending.stages.queue_wait += reply.queue_wait;
            pending.stages.batch_wait += reply.batch_wait;
            pending.stages.inference += waited.saturating_sub(reply.queue_wait + reply.batch_wait);
            shard.metrics.record_latency(pending.start.elapsed());
            pending.span.record("batch_size", reply.batch_size as u64);
            let served = if let Some(key) = pending.sentinel_key.take() {
                let check = Instant::now();
                sentinel_record(
                    shard,
                    &pending.client_id,
                    key.clone(),
                    Some(reply.score >= 0.5),
                );
                pending.stages.sentinel_check += check.elapsed();
                serve_score(
                    shared,
                    shard,
                    pending.poison,
                    reply.score,
                    &key,
                    &mut pending.span,
                )
            } else {
                reply.score
            };
            ScoreOutcome::Reply {
                resp: ScoreResponse::new(served, false, reply.batch_size)
                    .with_generation(reply.generation),
                faulted: true,
            }
        }
        Completion::Reply(Err(e)) => ScoreOutcome::Error(e),
        Completion::Deadline => {
            // Abandon the reply channel: the scorer's eventual send
            // fails harmlessly and the connection stays in sync instead
            // of hanging on a wedged scorer.
            shard.metrics.deadline_exceeded.inc();
            pending.span.record("deadline_exceeded", true);
            ScoreOutcome::Error(ServeError::DeadlineExceeded {
                deadline_ms: shared.config.request_deadline.as_millis() as u64,
            })
        }
        Completion::ScorerGone => ScoreOutcome::Error(ServeError::Internal {
            detail: "scorer dropped the reply".to_string(),
        }),
    };
    let Pending {
        mut span,
        mut stages,
        ..
    } = pending;
    finish_score(shared, shard, conn, &outcome, &mut stages, &mut span);
}

/// The single exit for every score request: encode + write is the
/// `serialize` stage, after which the full six-stage decomposition is
/// recorded on the span and into the `serve_stage_*_us` histograms.
fn finish_score(
    shared: &Arc<Shared>,
    shard: &ShardState,
    conn: &mut Conn,
    outcome: &ScoreOutcome,
    stages: &mut StageTimes,
    span: &mut Span,
) {
    let serialize_start = Instant::now();
    let (line, faulted) = match outcome {
        ScoreOutcome::Reply { resp, faulted } => (protocol::encode_score(resp), *faulted),
        ScoreOutcome::Error(err) => {
            shard.metrics.errors.inc();
            (protocol::encode_error(err), true)
        }
    };
    send_line(shared, shard, conn, &line, faulted);
    stages.serialize = serialize_start.elapsed();
    shard.metrics.record_stages(stages);
    let [queue_wait, batch_wait, cache_lookup, sentinel_check, inference, serialize] =
        stages.as_us();
    span.record("stage_queue_wait_us", queue_wait);
    span.record("stage_batch_wait_us", batch_wait);
    span.record("stage_cache_lookup_us", cache_lookup);
    span.record("stage_sentinel_check_us", sentinel_check);
    span.record("stage_inference_us", inference);
    span.record("stage_serialize_us", serialize);
}

/// Records one query in the shard's sentinel and forwards its
/// observations to the metrics. No-op when the sentinel is disabled.
fn sentinel_record(shard: &ShardState, client_id: &str, key: Vec<i64>, verdict: Option<bool>) {
    let obs = match shard.sentinel.lock() {
        Ok(mut s) => s.record(client_id, key, verdict),
        Err(_) => return,
    };
    if obs.near_duplicate {
        shard.metrics.sentinel_near_duplicates.inc();
    }
    if obs.verdict_flip {
        shard.metrics.sentinel_verdict_flips.inc();
    }
    if obs.newly_flagged {
        shard.metrics.sentinel_flagged.inc();
    }
}

/// The score actually sent to the client: the true score, or — for a
/// poison-flagged client — a deterministic seed-randomized one.
fn serve_score(
    shared: &Shared,
    shard: &ShardState,
    poison: bool,
    score: f64,
    key: &[i64],
    span: &mut Span,
) -> f64 {
    if !poison {
        return score;
    }
    shard.metrics.sentinel_poisoned.inc();
    span.record("poisoned", true);
    poison_score(shared.config.sentinel.seed, key)
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

fn respond_error(shared: &Arc<Shared>, shard: &ShardState, conn: &mut Conn, err: &ServeError) {
    shard.metrics.errors.inc();
    send_line(shared, shard, conn, &protocol::encode_error(err), true);
}

/// Writes one response line, marking the connection dead on failure;
/// `faulted` routes through the write-fault sites.
fn send_line(shared: &Arc<Shared>, shard: &ShardState, conn: &mut Conn, line: &str, faulted: bool) {
    let result = if faulted {
        write_line_faulted(shared, shard, &mut conn.stream, line)
    } else {
        write_line(&mut conn.stream, line)
    };
    if result.is_err() {
        conn.dead = true;
    }
}

/// Writes a multi-line Prometheus exposition block over the otherwise
/// line-oriented protocol, terminated by a `# EOF` marker line
/// (OpenMetrics convention) so clients know where the block ends.
fn write_metrics_block(conn: &mut Conn, text: &str) {
    let mut block = String::with_capacity(text.len() + 8);
    block.push_str(text);
    if !block.ends_with('\n') {
        block.push('\n');
    }
    block.push_str("# EOF\n");
    if write_all_blocking(&mut conn.stream, block.as_bytes()).is_err() {
        conn.dead = true;
    }
}

/// Writes a response line on the score path, subject to write faults:
/// [`FaultSite::WriteReset`] drops the connection instead of writing,
/// [`FaultSite::SlowWrite`] splits the line into two flushed chunks
/// with a pause between them.
fn write_line_faulted(
    shared: &Shared,
    shard: &ShardState,
    stream: &mut TcpStream,
    line: &str,
) -> std::io::Result<()> {
    if shared.fire(&shard.metrics, FaultSite::WriteReset) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected fault: write reset",
        ));
    }
    if shared.fire(&shard.metrics, FaultSite::SlowWrite) {
        let bytes = line.as_bytes();
        let mid = bytes.len() / 2;
        write_all_blocking(stream, &bytes[..mid])?;
        std::thread::sleep(shared.injector.delay());
        write_all_blocking(stream, &bytes[mid..])?;
        return write_all_blocking(stream, b"\n");
    }
    write_line(stream, line)
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    write_all_blocking(stream, line.as_bytes())?;
    write_all_blocking(stream, b"\n")
}

/// `write_all` over a non-blocking socket: on `WouldBlock`, waits for
/// writability (capped at [`WRITE_STALL_CAP`]) and retries. Responses
/// are small, so stalls only happen when a peer stops reading.
fn write_all_blocking(stream: &mut TcpStream, mut buf: &[u8]) -> std::io::Result<()> {
    let stall_start = Instant::now();
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stall_start.elapsed() > WRITE_STALL_CAP {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "write stalled past the cap",
                    ));
                }
                reactor::wait_writable(stream, Duration::from_millis(100))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scorer
// ---------------------------------------------------------------------------

pub(crate) fn scorer_loop(
    shared: &Shared,
    shard: &ShardState,
    rx: &Receiver<ScoreJob>,
    max_batch: usize,
    batch_timeout: Duration,
) {
    while let Some(jobs) = collect_batch(rx, max_batch, batch_timeout) {
        // One Arc clone per batch: a concurrent reload lands exactly at
        // a batch boundary, so every row in this batch — and the reply
        // generation each job reports — comes from one model.
        let model = shared.model.current();
        let mut span = Span::enter("serve.batch");
        // Batch execution starts here: each job's `batch_wait` stage
        // ends now, and everything until the scores are back — the
        // rows copy, any injected slow-inference fault, and the
        // forward pass itself — is attributed to `inference`.
        let exec_start = Instant::now();
        shard.metrics.queue_depth.add(-(jobs.len() as i64));
        if shared.fire(&shard.metrics, FaultSite::ScoreDelay) {
            std::thread::sleep(shared.injector.delay());
        }
        let rows: Vec<Vec<f64>> = jobs.iter().map(|j| j.features.clone()).collect();
        span.record("rows", rows.len() as u64);
        span.record("shard", shard.index as u64);
        span.record("generation", model.generation);
        // Tag the batch with every member's wire trace so a request is
        // followable into the batch that scored it.
        for job in &jobs {
            if job.trace_id != 0 {
                trace::event(
                    "serve.batch.job",
                    &[
                        ("trace_id", job.trace_id.into()),
                        ("client_span", job.client_span.into()),
                    ],
                );
            }
        }

        // BatchPanic/RowPanic fire inside the isolated scorer; with a
        // single shard (every deterministic chaos plan) only this
        // thread consumes those sites, so the delta is race-free.
        let scorer_faults = |shared: &Shared| {
            shared.injector.fired(FaultSite::BatchPanic)
                + shared.injector.fired(FaultSite::RowPanic)
        };
        let faults_before = scorer_faults(shared);
        let outcome = score_rows_isolated(&model.network, &rows, &shared.injector);
        let inference = exec_start.elapsed();
        shard
            .metrics
            .faults_injected
            .add(scorer_faults(shared) - faults_before);

        let n = jobs.len();
        shard.metrics.batches.inc();
        shard.metrics.record_batch_size(n as u64);
        if outcome.batch_failed {
            shard.metrics.scorer_panics.inc();
            span.record("batch_failed", true);
        }
        shard.metrics.row_failures.add(outcome.row_failures);
        let ok_rows = outcome.scores.iter().filter(|s| s.is_ok()).count() as u64;
        shard.metrics.rows_scored.add(ok_rows);

        if let Ok(mut cache) = shard.cache.lock() {
            for (job, score) in jobs.iter().zip(&outcome.scores) {
                if let Ok(score) = score {
                    cache.insert(job.cache_key.clone(), (*score, model.generation));
                }
            }
        }
        for (job, score) in jobs.into_iter().zip(outcome.scores) {
            // A send error means the connection died or gave up on its
            // deadline; successful scores are already cached, so the
            // work is not wasted either way.
            let reply = match score {
                Ok(score) => Ok(ScoredReply {
                    score,
                    batch_size: n,
                    queue_wait: job.received_at.saturating_duration_since(job.enqueued_at),
                    batch_wait: exec_start.saturating_duration_since(job.received_at),
                    inference,
                    generation: model.generation,
                }),
                Err(detail) => Err(ServeError::Internal { detail }),
            };
            let _ = job.reply.send(reply);
        }
        // Wake the owning event loop so replies are observed now, not
        // at the next idle tick.
        shard.waker.wake();
    }
}
