//! The server's SLO surface: default objectives, the runtime that
//! evaluates them against the live metrics registry, and the JSON
//! report behind `{"cmd": "slo"}`.
//!
//! The burn-rate math lives in `maleva_obs::slo` and is driven purely
//! by injected timestamps; this module supplies the wall clock (the
//! server's epoch), publishes alarm state as `slo_alarm_<name>` gauges
//! plus a `slo_alarm_transitions_total` counter, and emits a
//! `slo.alarm` trace event whenever an alarm changes state so firing
//! and recovery are visible in the same `trace.jsonl` as the requests
//! that caused them.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use maleva_obs::metrics::{Counter, Gauge, Registry};
use maleva_obs::slo::{BurnWindow, Objective, SloEngine, SloSpec};
use maleva_obs::trace;
use serde::Serialize;

/// The default serve-side SLOs:
///
/// * `request_p99_latency` — at most 1% of answered requests slower
///   than 250 ms (`serve_request_latency_us` above 250_000 µs).
/// * `error_rate` — at most 1% of requests answered with a typed
///   error (`serve_errors_total` / `serve_requests_total`).
/// * `sentinel_false_flag` — at most 0.5% of requests flagging a
///   client (`serve_sentinel_flagged_total` / `serve_requests_total`);
///   a benign workload should essentially never trip the sentinel.
///
/// Each alarm uses the classic two-window burn-rate pair: a short
/// window that reacts fast and a long window that filters blips; both
/// must exceed their budget-burn multiple for the alarm to fire.
pub fn default_serve_slos() -> Vec<SloSpec> {
    let windows = vec![
        BurnWindow {
            window: Duration::from_secs(60),
            max_burn_rate: 14.0,
        },
        BurnWindow {
            window: Duration::from_secs(300),
            max_burn_rate: 6.0,
        },
    ];
    vec![
        SloSpec {
            name: "request_p99_latency".to_string(),
            objective: Objective::LatencyAbove {
                histogram: "serve_request_latency_us".to_string(),
                threshold_us: 250_000,
            },
            target: 0.99,
            windows: windows.clone(),
        },
        SloSpec {
            name: "error_rate".to_string(),
            objective: Objective::EventRatio {
                numerator: "serve_errors_total".to_string(),
                denominator: "serve_requests_total".to_string(),
            },
            target: 0.99,
            windows: windows.clone(),
        },
        SloSpec {
            name: "sentinel_false_flag".to_string(),
            objective: Objective::EventRatio {
                numerator: "serve_sentinel_flagged_total".to_string(),
                denominator: "serve_requests_total".to_string(),
            },
            target: 0.995,
            windows,
        },
    ]
}

/// Evaluates the configured SLOs on demand against the server's
/// metrics registry, mirroring alarm state into gauges and trace
/// events.
#[derive(Debug)]
pub struct SloRuntime {
    engine: Mutex<SloEngine>,
    epoch: Instant,
    /// One `slo_alarm_<name>` gauge per spec, index-aligned.
    gauges: Vec<Arc<Gauge>>,
    transitions: Arc<Counter>,
}

impl SloRuntime {
    /// Builds a runtime for `specs`, registering `slo_alarm_<name>`
    /// gauges (1 = firing) and `slo_alarm_transitions_total` in
    /// `registry`.
    pub fn new(specs: Vec<SloSpec>, registry: &Registry) -> Self {
        let gauges = specs
            .iter()
            .map(|spec| {
                registry.gauge(
                    &format!("slo_alarm_{}", spec.name),
                    &format!("Whether the {} SLO burn-rate alarm is firing.", spec.name),
                )
            })
            .collect();
        let transitions = registry.counter(
            "slo_alarm_transitions_total",
            "SLO alarm state changes (firing <-> clear).",
        );
        SloRuntime {
            engine: Mutex::new(SloEngine::new(specs)),
            epoch: Instant::now(),
            gauges,
            transitions,
        }
    }

    /// Snapshots the registry at the current server uptime and
    /// evaluates every alarm — the body of `{"cmd": "slo"}`.
    pub fn observe_and_evaluate(&self, registry: &Registry) -> SloReport {
        self.evaluate_at(self.epoch.elapsed(), registry)
    }

    /// Deterministic entry point: observe and evaluate at an explicit
    /// uptime. Tests drive this with synthetic clocks.
    pub fn evaluate_at(&self, at: Duration, registry: &Registry) -> SloReport {
        let statuses = {
            let mut engine = match self.engine.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            engine.observe(at, registry);
            engine.evaluate(at)
        };
        let mut alarms = Vec::with_capacity(statuses.len());
        for (index, status) in statuses.into_iter().enumerate() {
            if let Some(gauge) = self.gauges.get(index) {
                gauge.set(i64::from(status.firing));
            }
            if status.changed {
                self.transitions.inc();
                trace::event(
                    "slo.alarm",
                    &[
                        ("name", status.name.as_str().into()),
                        ("firing", status.firing.into()),
                    ],
                );
            }
            alarms.push(SloAlarmReport {
                name: status.name,
                firing: status.firing,
                changed: status.changed,
                windows: status
                    .windows
                    .into_iter()
                    .map(|w| SloWindowReport {
                        window_ms: w.window.as_millis().min(u64::MAX as u128) as u64,
                        max_burn_rate: w.max_burn_rate,
                        burn_rate: w.burn_rate,
                        covered: w.covered,
                        bad: w.bad,
                        total: w.total,
                    })
                    .collect(),
            });
        }
        SloReport {
            evaluated_at_ms: at.as_millis().min(u64::MAX as u128) as u64,
            alarms,
        }
    }
}

/// The body of a `{"cmd": "slo"}` response.
#[derive(Debug, Clone, Serialize)]
pub struct SloReport {
    /// Server uptime at evaluation, milliseconds.
    pub evaluated_at_ms: u64,
    /// One entry per configured SLO, in spec order.
    pub alarms: Vec<SloAlarmReport>,
}

/// Alarm state for one SLO.
#[derive(Debug, Clone, Serialize)]
pub struct SloAlarmReport {
    /// The spec name (also the `slo_alarm_<name>` gauge suffix).
    pub name: String,
    /// Whether every window is covered and burning over its budget.
    pub firing: bool,
    /// Whether this evaluation flipped the alarm's state.
    pub changed: bool,
    /// Per-window burn-rate detail, in spec order.
    pub windows: Vec<SloWindowReport>,
}

/// Burn-rate detail for one alarm window.
#[derive(Debug, Clone, Serialize)]
pub struct SloWindowReport {
    /// The lookback window, milliseconds.
    pub window_ms: u64,
    /// The burn-rate multiple above which this window votes to fire.
    pub max_burn_rate: f64,
    /// The observed burn rate (bad fraction / error budget).
    pub burn_rate: f64,
    /// Whether the server has been up long enough to cover the window.
    pub covered: bool,
    /// Bad events inside the window.
    pub bad: u64,
    /// Total events inside the window.
    pub total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use maleva_obs::metrics::Registry;

    #[test]
    fn default_slos_register_alarm_gauges() {
        let registry = Registry::new();
        let runtime = SloRuntime::new(default_serve_slos(), &registry);
        let report = runtime.observe_and_evaluate(&registry);
        assert_eq!(report.alarms.len(), 3);
        assert!(report.alarms.iter().all(|a| !a.firing));
        let text = registry.render_prometheus();
        assert!(text.contains("slo_alarm_request_p99_latency 0"), "{text}");
        assert!(text.contains("slo_alarm_error_rate 0"), "{text}");
        assert!(text.contains("slo_alarm_sentinel_false_flag 0"), "{text}");
        assert!(text.contains("slo_alarm_transitions_total 0"), "{text}");
    }

    #[test]
    fn sustained_errors_fire_and_count_a_transition() {
        let registry = Registry::new();
        let requests = registry.counter("serve_requests_total", "requests");
        let errors = registry.counter("serve_errors_total", "errors");
        let spec = SloSpec {
            name: "error_rate".to_string(),
            objective: Objective::EventRatio {
                numerator: "serve_errors_total".to_string(),
                denominator: "serve_requests_total".to_string(),
            },
            target: 0.99,
            windows: vec![BurnWindow {
                window: Duration::from_millis(100),
                max_burn_rate: 2.0,
            }],
        };
        let runtime = SloRuntime::new(vec![spec], &registry);
        // Baseline at t=0, then a burst where half of all requests err.
        let r0 = runtime.evaluate_at(Duration::ZERO, &registry);
        assert!(!r0.alarms[0].firing);
        requests.add(100);
        errors.add(50);
        let r1 = runtime.evaluate_at(Duration::from_millis(150), &registry);
        assert!(r1.alarms[0].firing, "{r1:?}");
        assert!(r1.alarms[0].changed);
        assert!(r1.alarms[0].windows[0].burn_rate > 2.0);
        let text = registry.render_prometheus();
        assert!(text.contains("slo_alarm_error_rate 1"), "{text}");
        assert!(text.contains("slo_alarm_transitions_total 1"), "{text}");
        // Steady state afterwards: still firing, no new transition.
        let r2 = runtime.evaluate_at(Duration::from_millis(200), &registry);
        assert!(r2.alarms[0].firing);
        assert!(!r2.alarms[0].changed);
    }
}
