//! Chaos soak: mixed traffic from resilient clients against a live
//! server with deterministic fault injection at every site — connection
//! resets at accept, slow/partial reads and writes, dropped responses,
//! scorer panics (batch and per-row), and artificial scoring latency.
//!
//! The contract under chaos:
//!
//! * **nothing lost** — every client call terminates with a score or a
//!   typed error (no hangs, no silent drops);
//! * **nothing corrupted** — every successful reply is bit-identical to
//!   the offline oracle;
//! * **bounded error rate** — retries absorb most injected faults;
//! * **clean drain** — after the storm, health answers and shutdown
//!   joins every thread.
//!
//! The fault schedule is a pure function of the seed
//! (`MALEVA_CHAOS_SEED`, default 7), so CI can run a seed matrix and
//! any failure reproduces locally with the same seed. When
//! `MALEVA_CHAOS_OUT` names a file, the test dumps server stats, fault
//! counters, and per-client resilience metrics there as JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use maleva_client::{
    BackoffPolicy, BreakerConfig, ClientConfig, ClientError, ClientMetricsSnapshot, ScoreClient,
};
use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_serve::{
    spawn, FaultAction, FaultPlan, FaultSite, MetricsSnapshot, ServeConfig, ServerHandle,
};

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 60;
const KEYSPACE: usize = 24;

/// Installs a panic hook that swallows the *intentionally injected*
/// scorer panics (their payload contains "injected fault") so the test
/// log stays readable, while forwarding every real panic.
fn quiet_injected_panics() {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny context"))
}

/// The offline oracle: the bit pattern every successful reply for
/// `counts` must carry.
fn oracle_bits(counts: &[u32]) -> u64 {
    let detector = &ctx().detector;
    let features = detector.features().transform_counts(counts);
    maleva_serve::score_rows(detector.network(), std::slice::from_ref(&features))
        .expect("oracle forward")[0]
        .to_bits()
}

fn request_pool() -> Vec<(Vec<u32>, u64)> {
    let test = ctx().dataset.test();
    (0..KEYSPACE)
        .map(|i| {
            let counts = test[i % test.len()].counts().to_vec();
            let bits = oracle_bits(&counts);
            (counts, bits)
        })
        .collect()
}

fn spawn_with(config: ServeConfig) -> ServerHandle {
    spawn(ctx().detector.clone(), config).expect("spawn server")
}

fn chaos_seed() -> u64 {
    std::env::var("MALEVA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7)
}

/// Raw single-connection request helper for the targeted tests.
fn raw_roundtrips(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|line| {
            writer.write_all(line.as_bytes()).expect("write");
            writer.write_all(b"\n").expect("write newline");
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("read response");
            resp.trim_end().to_string()
        })
        .collect()
}

fn render_line(counts: &[u32]) -> String {
    let entries: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    format!("{{\"features\":[{}]}}", entries.join(","))
}

fn score_bits(line: &str) -> u64 {
    assert!(
        line.starts_with("{\"score\":"),
        "expected a score response, got: {line}"
    );
    let rest = &line["{\"score\":".len()..];
    let end = rest.find(',').expect("fields after score");
    rest[..end].parse::<f64>().expect("score parses").to_bits()
}

/// Regression for silent job loss: with EVERY batched forward panicking,
/// the scorer loop must survive, fall back to per-row scoring, and
/// answer every request bit-identically — no dropped replies, no dead
/// scorer thread.
#[test]
fn scorer_panic_loses_no_jobs_and_keeps_scores_bit_identical() {
    quiet_injected_panics();
    let plan = FaultPlan::disabled()
        .with_seed(3)
        .with(FaultSite::BatchPanic, FaultAction::EveryNth(1));
    let handle = spawn_with(ServeConfig {
        cache_capacity: 0, // every request must reach the scorer
        batch_timeout: Duration::from_millis(1),
        faults: plan,
        ..ServeConfig::default()
    });

    let pool = request_pool();
    let lines: Vec<String> = (0..20)
        .map(|i| render_line(&pool[i % pool.len()].0))
        .collect();
    let responses = raw_roundtrips(handle.addr(), &lines);
    for (i, resp) in responses.iter().enumerate() {
        let (_, want) = &pool[i % pool.len()];
        assert_eq!(score_bits(resp), *want, "request {i} corrupted: {resp}");
    }

    let stats = handle.shutdown();
    assert_eq!(stats.requests, 20);
    assert_eq!(stats.errors, 0, "no request may be lost to a panic");
    assert_eq!(stats.rows_scored, 20);
    assert!(
        stats.scorer_panics >= 20,
        "every batch panicked: {}",
        stats.scorer_panics
    );
    assert_eq!(stats.row_failures, 0);
}

/// A poisoned row fails alone with a typed `internal` error; its
/// neighbors still get bit-exact scores and the scorer loop survives.
#[test]
fn poisoned_rows_fail_alone_with_typed_internal_errors() {
    quiet_injected_panics();
    let plan = FaultPlan::disabled()
        .with_seed(5)
        .with(FaultSite::BatchPanic, FaultAction::EveryNth(1))
        .with(FaultSite::RowPanic, FaultAction::EveryNth(5));
    let handle = spawn_with(ServeConfig {
        cache_capacity: 0,
        batch_timeout: Duration::from_millis(1),
        faults: plan,
        ..ServeConfig::default()
    });

    let pool = request_pool();
    let lines: Vec<String> = (0..20)
        .map(|i| render_line(&pool[i % pool.len()].0))
        .collect();
    let responses = raw_roundtrips(handle.addr(), &lines);

    let mut internal = 0u64;
    for (i, resp) in responses.iter().enumerate() {
        if resp.starts_with("{\"error\":") {
            assert!(
                resp.contains("\"kind\":\"internal\"") && resp.contains("injected fault"),
                "unexpected error body: {resp}"
            );
            internal += 1;
        } else {
            let (_, want) = &pool[i % pool.len()];
            assert_eq!(score_bits(resp), *want, "request {i} corrupted: {resp}");
        }
    }
    assert!(internal >= 1, "the poisoned rows must surface");
    assert!(internal <= 20 / 5 + 1, "only poisoned rows may fail");

    // The scorer is still alive: a fresh request scores cleanly.
    let extra = raw_roundtrips(handle.addr(), &[render_line(&pool[0].0)]);
    if !extra[0].starts_with("{\"error\":") {
        assert_eq!(score_bits(&extra[0]), pool[0].1);
    }

    let stats = handle.shutdown();
    assert_eq!(
        stats.row_failures,
        internal + u64::from(extra[0].starts_with("{\"error\":"))
    );
    assert_eq!(stats.errors, stats.row_failures);
}

/// With the scorer artificially slowed and a shed threshold of one
/// queued job, concurrent clients must see `overloaded` rejections
/// carrying a positive `retry_after_ms` hint.
#[test]
fn admission_control_sheds_with_a_retry_hint() {
    quiet_injected_panics();
    let plan = FaultPlan::disabled()
        .with_seed(1)
        .with(FaultSite::ScoreDelay, FaultAction::EveryNth(1))
        .with_delay(Duration::from_millis(30));
    let handle = spawn_with(ServeConfig {
        cache_capacity: 0,
        batch_timeout: Duration::from_millis(1),
        max_batch: 1, // one row per batch: the backlog stays queued
        shed_queue_depth: 1,
        faults: plan,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let pool = request_pool();
    let workers: Vec<_> = (0..8)
        .map(|c| {
            let line = render_line(&pool[c % pool.len()].0);
            std::thread::spawn(move || raw_roundtrips(addr, &[line])[0].clone())
        })
        .collect();
    let responses: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let shed: Vec<&String> = responses
        .iter()
        .filter(|r| r.starts_with("{\"error\":"))
        .collect();
    for resp in &shed {
        assert!(resp.contains("\"kind\":\"overloaded\""), "{resp}");
        assert!(resp.contains("\"retryable\":true"), "{resp}");
        let hint: u64 = resp
            .split("\"retry_after_ms\":")
            .nth(1)
            .and_then(|rest| rest.split('}').next())
            .and_then(|num| num.trim().parse().ok())
            .unwrap_or_else(|| panic!("overloaded without retry_after_ms: {resp}"));
        assert!(hint > 0, "hint must be positive: {resp}");
    }

    let stats = handle.shutdown();
    assert!(
        stats.shed >= 1,
        "8 concurrent clients against a 30ms/row scorer with shed depth 1 \
         must shed at least once (shed={})",
        stats.shed
    );
    assert_eq!(stats.shed as usize, shed.len());
}

/// A wedged scorer turns into a typed `deadline_exceeded` response
/// within the configured budget — never a hanging connection.
#[test]
fn slow_scorer_yields_typed_deadline_exceeded() {
    quiet_injected_panics();
    let plan = FaultPlan::disabled()
        .with_seed(2)
        .with(FaultSite::ScoreDelay, FaultAction::EveryNth(1))
        .with_delay(Duration::from_millis(250));
    let handle = spawn_with(ServeConfig {
        cache_capacity: 0,
        batch_timeout: Duration::from_millis(1),
        request_deadline: Duration::from_millis(40),
        faults: plan,
        ..ServeConfig::default()
    });

    let pool = request_pool();
    let start = std::time::Instant::now();
    let responses = raw_roundtrips(handle.addr(), &[render_line(&pool[0].0)]);
    let elapsed = start.elapsed();
    assert!(
        responses[0].contains("\"kind\":\"deadline_exceeded\"")
            && responses[0].contains("\"retryable\":true"),
        "expected deadline_exceeded, got: {responses:?}"
    );
    assert!(
        elapsed < Duration::from_millis(200),
        "deadline response took {elapsed:?} (must beat the 250ms scorer)"
    );

    let stats = handle.shutdown();
    assert!(stats.deadline_exceeded >= 1);
}

/// `{"cmd": "health"}` exposes queue depth, drain state, and the
/// per-site fault counters.
#[test]
fn health_endpoint_reports_queue_drain_and_fault_state() {
    quiet_injected_panics();
    let plan = FaultPlan::disabled()
        .with_seed(4)
        .with(FaultSite::BatchPanic, FaultAction::EveryNth(1));
    let handle = spawn_with(ServeConfig {
        cache_capacity: 0,
        batch_timeout: Duration::from_millis(1),
        faults: plan,
        ..ServeConfig::default()
    });

    let pool = request_pool();
    let responses = raw_roundtrips(
        handle.addr(),
        &[render_line(&pool[0].0), "{\"cmd\":\"health\"}".to_string()],
    );
    let health = &responses[1];
    assert!(health.starts_with("{\"health\":{"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"draining\":false"), "{health}");
    assert!(health.contains("\"queue_depth\":"), "{health}");
    assert!(health.contains("\"scorer_panics\":1"), "{health}");
    assert!(health.contains("[\"batch_panic\",1]"), "{health}");

    // The handle-side accessors agree with the wire.
    assert_eq!(handle.health().scorer_panics, 1);
    let fired: u64 = handle
        .fault_counts()
        .into_iter()
        .map(|(_, count)| count)
        .sum();
    assert_eq!(fired, 1);
    handle.shutdown();
}

/// JSON artifact for CI: enough to diagnose a failed seed offline.
#[derive(serde::Serialize)]
struct ChaosDump {
    seed: u64,
    sent: u64,
    ok: u64,
    failed: u64,
    server: MetricsSnapshot,
    faults: Vec<(String, u64)>,
    clients: Vec<ClientMetricsSnapshot>,
}

/// The headline chaos soak — see the module docs for the contract.
#[test]
fn chaos_soak_loses_nothing_corrupts_nothing_and_drains_clean() {
    quiet_injected_panics();
    let seed = chaos_seed();
    let plan = FaultPlan::disabled()
        .with_seed(seed)
        .with(FaultSite::AcceptReset, FaultAction::EveryNth(5))
        .with(FaultSite::SlowRead, FaultAction::EveryNth(23))
        .with(FaultSite::SlowWrite, FaultAction::EveryNth(29))
        .with(FaultSite::WriteReset, FaultAction::EveryNth(17))
        .with(FaultSite::BatchPanic, FaultAction::EveryNth(7))
        .with(FaultSite::RowPanic, FaultAction::EveryNth(11))
        .with(FaultSite::ScoreDelay, FaultAction::EveryNth(5))
        .with_delay(Duration::from_millis(1));
    let handle = spawn_with(ServeConfig {
        cache_capacity: 0, // every request exercises the scorer path
        max_batch: 8,
        batch_timeout: Duration::from_millis(1),
        request_deadline: Duration::from_secs(5),
        faults: plan,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let pool = request_pool();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut client = ScoreClient::new(ClientConfig {
                    addr: addr.to_string(),
                    client_id: Some(format!("chaos-{c}")),
                    connect_timeout: Duration::from_secs(2),
                    io_timeout: Duration::from_secs(5),
                    call_deadline: Duration::from_secs(10),
                    max_attempts: 6,
                    backoff: BackoffPolicy {
                        base: Duration::from_millis(2),
                        cap: Duration::from_millis(50),
                        jitter_frac: 0.5,
                        seed: seed ^ c as u64,
                    },
                    breaker: BreakerConfig {
                        failure_threshold: 5,
                        cooldown_ms: 100,
                        half_open_probes: 1,
                        probe_timeout_ms: 1_000,
                    },
                    retry_budget_cap: 20.0,
                    retry_budget_deposit: 0.5,
                });
                let mut ok = 0u64;
                let mut failed = 0u64;
                for r in 0..REQUESTS_PER_CLIENT {
                    let (counts, want_bits) = &pool[(c * 11 + r) % pool.len()];
                    match client.score_counts(counts) {
                        Ok(outcome) => {
                            // The hard corruption bar: bit-identical to
                            // the offline oracle, chaos or not.
                            assert_eq!(
                                outcome.score.to_bits(),
                                *want_bits,
                                "client {c} request {r}: corrupted score {}",
                                outcome.score
                            );
                            ok += 1;
                        }
                        // Typed, accounted failure — acceptable, lost
                        // or hung — never.
                        Err(
                            ClientError::Server { .. }
                            | ClientError::RetriesExhausted { .. }
                            | ClientError::BudgetExhausted { .. }
                            | ClientError::DeadlineExceeded { .. }
                            | ClientError::CircuitOpen { .. },
                        ) => failed += 1,
                        Err(other) => panic!("client {c} request {r}: unexpected {other:?}"),
                    }
                }
                (ok, failed, client.metrics().snapshot())
            })
        })
        .collect();

    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut clients: Vec<ClientMetricsSnapshot> = Vec::new();
    for w in workers {
        let (o, f, m) = w.join().expect("chaos worker panicked");
        ok += o;
        failed += f;
        clients.push(m);
    }
    let sent = (CLIENTS * REQUESTS_PER_CLIENT) as u64;

    // Nothing lost: every call terminated with a score or typed error.
    assert_eq!(ok + failed, sent);
    // Bounded client-visible error rate: retries absorb the chaos.
    let ok_rate = ok as f64 / sent as f64;
    assert!(
        ok_rate >= 0.85,
        "ok rate {ok_rate:.3} below bound (ok={ok}, failed={failed}, seed={seed})"
    );

    // The storm actually happened: every site fired, including at
    // least one scorer panic per run.
    let faults = handle.fault_counts();
    for (site, fired) in &faults {
        assert!(*fired >= 1, "fault site {site} never fired (seed={seed})");
    }

    // Health answers after the storm, then the drain is clean.
    let mut probe = ScoreClient::connect_to(&addr.to_string());
    let health = loop {
        // The prober is subject to accept/write faults too — retry it.
        match probe.command("health") {
            Ok(line) => break line,
            Err(ClientError::Io { .. }) => continue,
            Err(other) => panic!("health probe failed: {other:?}"),
        }
    };
    assert!(health.starts_with("{\"health\":{"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let stats = handle.shutdown();
    assert!(stats.scorer_panics >= 1, "no scorer panic in the soak");
    assert!(stats.rows_scored > 0);
    let total_retries: u64 = clients.iter().map(|m| m.retries).sum();
    assert!(
        total_retries >= 1,
        "chaos without a single retry means the faults were not felt"
    );

    if let Ok(path) = std::env::var("MALEVA_CHAOS_OUT") {
        let dump = ChaosDump {
            seed,
            sent,
            ok,
            failed,
            server: stats,
            faults: faults
                .into_iter()
                .map(|(site, fired)| (site.to_string(), fired))
                .collect(),
            clients,
        };
        let json = serde_json::to_string(&dump).expect("dump serializes");
        std::fs::write(&path, json).expect("write chaos dump");
    }
}
