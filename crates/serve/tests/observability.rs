//! End-to-end observability contract for the server: wire trace
//! context is honored, every score request decomposes into the six
//! canonical latency stages, and the SLO burn-rate alarms fire under
//! an injected slow-inference fault but stay silent when idle.

use std::io::{BufRead, BufReader, Write};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_obs::slo::{BurnWindow, Objective, SloSpec};
use maleva_obs::trace::{self, Sink};
use maleva_serve::{spawn, FaultAction, FaultPlan, FaultSite, ServeConfig, ServerHandle};

/// The tracer sink is process-global; serialize the tests that touch
/// it (and those that emit spans concurrently) in this binary.
fn sink_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny context"))
}

fn spawn_with(config: ServeConfig) -> ServerHandle {
    spawn(ctx().detector.clone(), config).expect("spawn server")
}

/// One connection, one response line per request line.
fn raw_roundtrips(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|line| {
            writer.write_all(line.as_bytes()).expect("write");
            writer.write_all(b"\n").expect("write newline");
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("read response");
            resp.trim_end().to_string()
        })
        .collect()
}

/// Sends `{"cmd":"metrics"}` and reads the multi-line exposition block
/// up to its `# EOF` marker.
fn raw_metrics_block(addr: std::net::SocketAddr) -> String {
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"cmd\":\"metrics\"}\n").expect("write");
    let mut block = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read exposition line");
        if line.trim_end() == "# EOF" || line.is_empty() {
            break;
        }
        block.push_str(&line);
    }
    block
}

fn traced_score_line(counts: &[u32], trace_id: u64, span_id: u64) -> String {
    let entries: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    format!(
        "{{\"features\":[{}],\"trace_id\":{trace_id},\"span_id\":{span_id}}}",
        entries.join(",")
    )
}

#[test]
fn traced_requests_decompose_into_six_stages() {
    let _guard = sink_lock();
    let captured = trace::install_memory_sink();

    // No cache so every request runs the full queue → batch → inference
    // path; tiny batch timeout keeps the test fast.
    let handle = spawn_with(ServeConfig {
        cache_capacity: 0,
        batch_timeout: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    let test = ctx().dataset.test();
    const N: u64 = 8;
    let lines: Vec<String> = (0..N)
        .map(|i| {
            let counts = test[i as usize % test.len()].counts();
            traced_score_line(counts, 1000 + i, 2000 + i)
        })
        .collect();
    let responses = raw_roundtrips(handle.addr(), &lines);
    for resp in &responses {
        assert!(resp.starts_with("{\"score\":"), "{resp}");
    }
    handle.shutdown();
    trace::install(Sink::Disabled).expect("disable sink");

    let captured_lines = captured.lines();
    let report = maleva_obs::report::analyze_lines(captured_lines.iter().map(|s| s.as_str()), 5);
    assert_eq!(report.parse_errors, 0, "tracer emitted unparseable lines");
    // Every score request is a staged serve.request exit whose six
    // stages account for the span duration within one bucket.
    assert!(
        report.staged_requests >= N as usize,
        "expected >= {N} staged requests, report:\n{}",
        report.render_text()
    );
    assert_eq!(
        report.stage_sum_within_tolerance,
        report.staged_requests,
        "stage decomposition leaks latency, report:\n{}",
        report.render_text()
    );
    // The inbound trace context is visible on the server side, both on
    // the request span and on the batch membership events.
    assert!(
        report.server_traces >= N as usize,
        "server-side traces missing, report:\n{}",
        report.render_text()
    );
    let batch_tagged = captured_lines
        .iter()
        .filter(|l| l.contains("\"name\":\"serve.batch.job\"") && l.contains("\"trace_id\":10"))
        .count();
    assert!(
        batch_tagged >= N as usize,
        "expected every traced job tagged in its batch, got {batch_tagged}:\n{}",
        captured_lines.join("\n")
    );
    // Exemplars carry the wire trace id, not a server-internal one.
    assert!(report
        .exemplars
        .iter()
        .all(|e| (1000..1000 + N).contains(&e.trace_id)));
}

#[test]
fn slo_alarm_fires_under_slow_inference_and_stays_silent_when_idle() {
    let _guard = sink_lock();

    // Idle soak first: default objectives, nothing happening — every
    // alarm reports silent over the wire and via the typed handle.
    let idle = spawn_with(ServeConfig::default());
    let wire = raw_roundtrips(idle.addr(), &["{\"cmd\":\"slo\"}".to_string()]);
    assert!(wire[0].starts_with("{\"slo\":{"), "{}", wire[0]);
    assert!(!wire[0].contains("\"firing\":true"), "{}", wire[0]);
    let report = idle.slo();
    assert_eq!(report.alarms.len(), 3);
    assert!(report.alarms.iter().all(|a| !a.firing), "{report:?}");
    idle.shutdown();

    // Now a server whose every inference sleeps 20ms, with a tight
    // latency SLO over a short window so the test observes a full
    // window of bad requests quickly.
    let slow = FaultPlan::disabled()
        .with(FaultSite::ScoreDelay, FaultAction::EveryNth(1))
        .with_delay(Duration::from_millis(20));
    let handle = spawn_with(ServeConfig {
        cache_capacity: 0,
        batch_timeout: Duration::from_millis(1),
        faults: slow,
        slos: vec![SloSpec {
            name: "slow_p99".to_string(),
            objective: Objective::LatencyAbove {
                histogram: "serve_request_latency_us".to_string(),
                threshold_us: 1_000,
            },
            target: 0.9,
            windows: vec![BurnWindow {
                window: Duration::from_millis(50),
                max_burn_rate: 1.0,
            }],
        }],
        ..ServeConfig::default()
    });
    // Baseline snapshot before the burst so the window has history.
    let baseline = handle.slo();
    assert!(!baseline.alarms[0].firing);

    let test = ctx().dataset.test();
    let lines: Vec<String> = (0..6)
        .map(|i| {
            let entries: Vec<String> = test[i % test.len()]
                .counts()
                .iter()
                .map(|c| c.to_string())
                .collect();
            format!("{{\"features\":[{}]}}", entries.join(","))
        })
        .collect();
    raw_roundtrips(handle.addr(), &lines);
    // Let the evaluation clock cover the 50ms window.
    std::thread::sleep(Duration::from_millis(60));

    let firing = handle.slo();
    let alarm = &firing.alarms[0];
    assert!(alarm.firing, "expected slow_p99 to fire: {firing:?}");
    assert!(alarm.windows[0].covered);
    assert!(alarm.windows[0].burn_rate > 1.0, "{alarm:?}");
    assert!(alarm.windows[0].bad >= 6, "{alarm:?}");

    // The alarm state is mirrored on the wire and in the exposition.
    let wire = raw_roundtrips(handle.addr(), &["{\"cmd\":\"slo\"}".to_string()]);
    assert!(
        wire[0].contains("\"name\":\"slow_p99\"") && wire[0].contains("\"firing\":true"),
        "{}",
        wire[0]
    );
    let exposition = raw_metrics_block(handle.addr());
    assert!(exposition.contains("slo_alarm_slow_p99 1"), "{exposition}");
    assert!(
        exposition.contains("slo_alarm_transitions_total 1"),
        "{exposition}"
    );
    handle.shutdown();
}
