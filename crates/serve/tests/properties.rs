//! Property tests pinning the serving contract of the paper's detector:
//! scoring a batch of feature rows in **one** forward pass is
//! bit-identical to scoring each row alone — for any matrix shape, any
//! micro-batch size, and any network width. Batching must be purely a
//! throughput optimization, never a semantic change.

use maleva_nn::{Activation, Network, NetworkBuilder};
use maleva_serve::{score_rows, score_rows_sequential};
use proptest::prelude::*;

fn net(input_dim: usize, hidden: usize, seed: u64) -> Network {
    NetworkBuilder::new(input_dim)
        .layer(hidden, Activation::ReLU)
        .layer(hidden.div_ceil(2).max(2), Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(seed)
        .build()
        .expect("valid architecture")
}

/// Strategy: a random feature matrix as (width, rows) with every row
/// exactly `width` wide. Values mix sparse zeros (the common case for
/// API-call counts) with arbitrary magnitudes.
fn matrix() -> impl Strategy<Value = (usize, Vec<Vec<f64>>)> {
    (1usize..14, 1usize..22).prop_flat_map(|(width, n_rows)| {
        (
            Just(width),
            prop::collection::vec(
                prop::collection::vec(
                    prop::sample::select(vec![0.0f64, 0.25, 1.0, -3.5, 7.0, 1e-3, 42.0]),
                    width,
                ),
                n_rows,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline invariant: one batched forward over all rows equals
    /// per-row forwards, bitwise.
    #[test]
    fn batched_scores_are_bit_identical_to_sequential(
        (width, rows) in matrix(),
        hidden in 2usize..12,
        seed in 0u64..32,
    ) {
        let net = net(width, hidden, seed);
        let batched = score_rows(&net, &rows).expect("batched");
        let sequential = score_rows_sequential(&net, &rows).expect("sequential");
        prop_assert_eq!(batched.len(), rows.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            prop_assert_eq!(b.to_bits(), s.to_bits(), "row {} diverged: {} vs {}", i, b, s);
        }
    }

    /// Chunking invariance: splitting the same rows into micro-batches
    /// of ANY size (the scorer's `max_batch` is load-dependent) yields
    /// the same bits as one big batch and as per-row scoring.
    #[test]
    fn any_chunking_yields_the_same_bits(
        (width, rows) in matrix(),
        max_batch in 1usize..40,
        seed in 0u64..32,
    ) {
        let net = net(width, 6, seed);
        let reference = score_rows_sequential(&net, &rows).expect("sequential");
        let chunked: Vec<f64> = rows
            .chunks(max_batch)
            .flat_map(|chunk| score_rows(&net, chunk).expect("chunk"))
            .collect();
        prop_assert_eq!(chunked.len(), reference.len());
        for (c, r) in chunked.iter().zip(&reference) {
            prop_assert_eq!(c.to_bits(), r.to_bits());
        }
    }

    /// Scores are probabilities regardless of batch composition.
    #[test]
    fn scores_are_valid_probabilities((width, rows) in matrix(), seed in 0u64..32) {
        let net = net(width, 5, seed);
        for score in score_rows(&net, &rows).expect("batched") {
            prop_assert!((0.0..=1.0).contains(&score), "score {} out of range", score);
        }
    }

    /// A row's score does not depend on which other rows share its
    /// batch: scoring `[row]` alone equals scoring it inside any batch.
    #[test]
    fn neighbors_cannot_influence_a_row(
        (width, rows) in matrix(),
        pick in 0usize..64,
        seed in 0u64..32,
    ) {
        let net = net(width, 7, seed);
        let i = pick % rows.len();
        let alone = score_rows(&net, &rows[i..=i]).expect("alone")[0];
        let together = score_rows(&net, &rows).expect("together")[i];
        prop_assert_eq!(alone.to_bits(), together.to_bits());
    }
}
