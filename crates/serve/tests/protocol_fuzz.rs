//! Protocol fuzz test against a live server: malformed JSON, wrong
//! feature counts, NaN / negative / fractional values, unknown
//! commands, binary garbage, and oversized lines must all produce a
//! **typed** error response — never a panic, a hang, or a dropped
//! connection (except `line_too_long`, which closes after responding
//! because the stream is out of sync).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_serve::{spawn, ServeConfig, ServerHandle};

/// Small line limit so the oversized-line case is cheap to trigger.
const LINE_LIMIT: usize = 8 * 1024;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny context"))
}

fn spawn_server() -> ServerHandle {
    spawn(
        ctx().detector.clone(),
        ServeConfig {
            max_line_bytes: LINE_LIMIT,
            ..ServeConfig::default()
        },
    )
    .expect("spawn server")
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).ok();
        // A test-side guard: if the server ever hangs instead of
        // responding, reads fail loudly instead of wedging the suite.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write");
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send_raw(line.as_bytes());
        self.send_raw(b"\n");
        self.read_response()
    }

    fn read_response(&mut self) -> String {
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        resp.trim_end().to_string()
    }

    /// Asserts the connection is closed: either a clean EOF or a reset
    /// (the server closes with our excess bytes still unread, which
    /// surfaces as RST on many platforms).
    fn expect_eof(&mut self) {
        let mut resp = String::new();
        match self.reader.read_line(&mut resp) {
            Ok(0) => {}
            Ok(_) => panic!("expected a closed connection, got: {resp}"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                ),
                "expected a closed connection, got error: {e}"
            ),
        }
    }
}

fn error_kind(resp: &str) -> &str {
    assert!(
        resp.starts_with("{\"error\":{\"kind\":\""),
        "expected a typed error, got: {resp}"
    );
    let rest = &resp["{\"error\":{\"kind\":\"".len()..];
    &rest[..rest.find('"').expect("closing quote")]
}

fn valid_line(dim: usize) -> String {
    format!("{{\"features\":[{}]}}", vec!["1"; dim].join(","))
}

#[test]
fn malformed_inputs_get_typed_errors_and_the_connection_survives() {
    let handle = spawn_server();
    let dim = ctx().detector.features().dim();
    let mut client = Client::connect(&handle);

    let cases: Vec<(String, &str)> = vec![
        // Broken JSON.
        ("{oops".to_string(), "malformed_json"),
        ("}{".to_string(), "malformed_json"),
        ("{\"features\": [1, 2,".to_string(), "malformed_json"),
        // JSON NaN/Infinity literals are not valid JSON at all.
        (
            format!("{{\"features\":[NaN{}]}}", ",0".repeat(dim - 1)),
            "malformed_json",
        ),
        (
            format!("{{\"features\":[Infinity{}]}}", ",0".repeat(dim - 1)),
            "malformed_json",
        ),
        // Valid JSON, wrong shape.
        ("42".to_string(), "unknown_command"),
        ("[1,2,3]".to_string(), "unknown_command"),
        ("{\"cmd\":\"reboot\"}".to_string(), "unknown_command"),
        ("{\"cmd\":7}".to_string(), "unknown_command"),
        ("{\"featurez\":[1]}".to_string(), "unknown_command"),
        ("{\"features\":\"many\"}".to_string(), "unknown_command"),
        // Right key, wrong arity.
        ("{\"features\":[1,2,3]}".to_string(), "wrong_dimension"),
        ("{\"features\":[]}".to_string(), "wrong_dimension"),
        (
            format!("{{\"features\":[{},0]}}", vec!["0"; dim].join(",")),
            "wrong_dimension",
        ),
        // Right arity, invalid counts.
        (
            format!("{{\"features\":[-1{}]}}", ",0".repeat(dim - 1)),
            "invalid_feature",
        ),
        (
            format!("{{\"features\":[2.5{}]}}", ",0".repeat(dim - 1)),
            "invalid_feature",
        ),
        (
            format!("{{\"features\":[1e300{}]}}", ",0".repeat(dim - 1)),
            "invalid_feature",
        ),
        (
            format!("{{\"features\":[null{}]}}", ",0".repeat(dim - 1)),
            "invalid_feature",
        ),
        (
            format!("{{\"features\":[\"3\"{}]}}", ",0".repeat(dim - 1)),
            "invalid_feature",
        ),
    ];

    for (line, want_kind) in &cases {
        let resp = client.roundtrip(line);
        assert_eq!(
            error_kind(&resp),
            *want_kind,
            "request {line:.60} got: {resp:.120}"
        );
        assert!(resp.contains("\"retryable\":false"), "{resp}");
    }

    // After all that abuse the same connection still scores.
    let resp = client.roundtrip(&valid_line(dim));
    assert!(
        resp.starts_with("{\"score\":"),
        "connection still works: {resp}"
    );

    let stats = handle.shutdown();
    assert_eq!(stats.errors, cases.len() as u64);
    assert_eq!(
        stats.requests, 1,
        "only the final valid request reached scoring"
    );
}

#[test]
fn binary_garbage_is_rejected_without_panicking() {
    let handle = spawn_server();
    let mut client = Client::connect(&handle);
    client.send_raw(&[0xff, 0xfe, 0x00, 0x80, b'\n']);
    let resp = client.read_response();
    assert_eq!(error_kind(&resp), "malformed_json");

    // Blank and whitespace-only lines are skipped, not answered.
    client.send_raw(b"\n\r\n   \n");
    let dim = ctx().detector.features().dim();
    let resp = client.roundtrip(&valid_line(dim));
    assert!(resp.starts_with("{\"score\":"), "{resp}");
}

#[test]
fn oversized_line_gets_a_typed_error_then_the_connection_closes() {
    let handle = spawn_server();
    let mut client = Client::connect(&handle);

    // One giant line, well past the limit, sent in chunks with no
    // newline until the very end.
    let blob = "a".repeat(LINE_LIMIT * 2);
    client.send_raw(blob.as_bytes());
    client.send_raw(b"\n");
    let resp = client.read_response();
    assert_eq!(error_kind(&resp), "line_too_long");
    assert!(resp.contains(&LINE_LIMIT.to_string()), "{resp}");
    client.expect_eof();

    // The server is still healthy for new connections.
    let dim = ctx().detector.features().dim();
    let mut fresh = Client::connect(&handle);
    let resp = fresh.roundtrip(&valid_line(dim));
    assert!(resp.starts_with("{\"score\":"), "{resp}");
}

#[test]
fn oversized_line_without_newline_is_still_detected() {
    let handle = spawn_server();
    let mut client = Client::connect(&handle);
    // Never send a newline: the bounded reader must detect the overrun
    // at limit + 1 bytes rather than buffering forever.
    let blob = "x".repeat(LINE_LIMIT + 64);
    client.send_raw(blob.as_bytes());
    let resp = client.read_response();
    assert_eq!(error_kind(&resp), "line_too_long");
    client.expect_eof();
    handle.shutdown();
}

#[test]
fn crlf_line_endings_are_accepted() {
    let handle = spawn_server();
    let dim = ctx().detector.features().dim();
    let mut client = Client::connect(&handle);
    client.send_raw(valid_line(dim).as_bytes());
    client.send_raw(b"\r\n");
    let resp = client.read_response();
    assert!(resp.starts_with("{\"score\":"), "{resp}");
    handle.shutdown();
}
