//! Hot-reload soak and shard-merge consistency tests.
//!
//! The contract under test: `{"cmd": "reload"}` swaps the model
//! atomically at a batch boundary, so under concurrent traffic every
//! response is bit-identical to exactly one of the candidate models'
//! offline oracles — no request is ever scored by a half-installed
//! model — and a failed reload (bad artifact, chaos faults) leaves the
//! serving generation untouched. Separately, a `{"cmd": "stats"}`
//! taken mid-traffic on a sharded server must be snapshot-consistent:
//! the merged counters equal the per-shard sums in the same response.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_nn::{Activation, Network, NetworkBuilder};
use maleva_serve::{spawn, FaultPlan, ServeConfig, ServerHandle};
use serde::Content;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny context"))
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("maleva-reload-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// An alternate network with the same shape contract as the boot model
/// but different (seed-determined) weights.
fn alternate_network(seed: u64) -> Network {
    let dim = ctx().detector.features().dim();
    NetworkBuilder::new(dim)
        .layer(8, Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(seed)
        .build()
        .expect("alternate network")
}

/// Writes `network` as a JSON export and returns the path.
fn export(dir: &std::path::Path, name: &str, network: &Network) -> String {
    let path = dir.join(name);
    std::fs::write(&path, network.to_json().expect("to_json")).expect("write export");
    path.to_str().expect("utf8 path").to_string()
}

/// Offline oracle for `counts` under an arbitrary network (through the
/// serving pipeline's feature transform).
fn oracle_bits(network: &Network, counts: &[u32]) -> u64 {
    let features = ctx().detector.features().transform_counts(counts);
    maleva_serve::score_rows(network, std::slice::from_ref(&features)).expect("oracle forward")[0]
        .to_bits()
}

fn render_line(counts: &[u32]) -> String {
    let entries: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    format!("{{\"features\":[{}]}}", entries.join(","))
}

struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone stream");
        Wire {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        resp.trim_end().to_string()
    }
}

/// Pulls the `"score"` field bits out of a response line (Rust's f64
/// `Display` is shortest-roundtrip, so parsing back is bit-exact).
fn parse_score_bits(line: &str) -> u64 {
    assert!(
        line.starts_with("{\"score\":"),
        "expected a score response, got: {line}"
    );
    let rest = &line["{\"score\":".len()..];
    let end = rest.find(',').expect("fields after score");
    rest[..end]
        .parse::<f64>()
        .expect("score is a float")
        .to_bits()
}

/// The `"generation"` field of a score response (0 when omitted, i.e.
/// the boot model).
fn parse_generation(line: &str) -> u64 {
    match line.find("\"generation\":") {
        None => 0,
        Some(at) => {
            let rest = &line[at + "\"generation\":".len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().expect("generation is an integer")
        }
    }
}

struct JsonValue(Content);

impl<'de> serde::Deserialize<'de> for JsonValue {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.content().map(JsonValue)
    }
}

fn u64_of(content: &Content) -> u64 {
    match content {
        Content::U64(v) => *v,
        Content::I64(v) => (*v).max(0) as u64,
        Content::F64(v) => *v as u64,
        other => panic!("not a number: {other:?}"),
    }
}

/// Every response under a reload storm is bit-identical to exactly one
/// of the candidate models, and its `generation` tag maps to that
/// model consistently — no request straddles a swap.
#[test]
fn reload_soak_every_response_belongs_to_exactly_one_model() {
    let dir = scratch("soak");
    let boot = ctx().detector.network().clone();
    let alt = alternate_network(9001);
    let boot_path = export(&dir, "boot.json", &boot);
    let alt_path = export(&dir, "alt.json", &alt);

    let handle = spawn(
        ctx().detector.clone(),
        ServeConfig {
            shards: 2,
            batch_timeout: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .expect("spawn server");
    let addr = handle.addr();

    let test = ctx().dataset.test();
    let pool: Vec<(String, u64, u64)> = (0..12)
        .map(|i| {
            let counts = test[i % test.len()].counts();
            (
                render_line(counts),
                oracle_bits(&boot, counts),
                oracle_bits(&alt, counts),
            )
        })
        .collect();

    // Controller: alternate installing the two models while the
    // clients are mid-flight. Odd installs serve `alt`, even ones
    // (and generation 0) serve `boot` weights.
    let stop = Arc::new(AtomicBool::new(false));
    let controller = {
        let stop = Arc::clone(&stop);
        let mut client = maleva_client::ScoreClient::connect_to(&addr.to_string());
        std::thread::spawn(move || {
            let mut flips = 0u64;
            let mut last_generation = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let path = if flips.is_multiple_of(2) {
                    &alt_path
                } else {
                    &boot_path
                };
                let info = client.reload(path).expect("reload");
                assert_eq!(
                    info.generation,
                    last_generation + 1,
                    "generations are dense and monotonic"
                );
                last_generation = info.generation;
                flips += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            last_generation
        })
    };

    let workers: Vec<_> = (0..4)
        .map(|c| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut wire = Wire::connect(addr);
                for r in 0..200 {
                    let (line, boot_bits, alt_bits) = &pool[(c * 5 + r) % pool.len()];
                    let resp = wire.roundtrip(line);
                    let got = parse_score_bits(&resp);
                    let generation = parse_generation(&resp);
                    // Bit-identical to exactly one candidate…
                    assert!(
                        got == *boot_bits || got == *alt_bits,
                        "client {c} request {r}: score matches neither model: {resp}"
                    );
                    // …and the generation tag agrees with the weights:
                    // odd installs are `alt`, even ones are `boot`.
                    let expect = if !generation.is_multiple_of(2) {
                        *alt_bits
                    } else {
                        *boot_bits
                    };
                    assert_eq!(
                        got, expect,
                        "client {c} request {r}: generation {generation} served \
                         the other model's bits: {resp}"
                    );
                }
            })
        })
        .collect();

    for w in workers {
        w.join().expect("client thread");
    }
    stop.store(true, Ordering::SeqCst);
    let installed = controller.join().expect("controller thread");
    assert!(installed >= 2, "the storm actually swapped models");
    assert_eq!(handle.generation(), installed);

    let stats = handle.shutdown();
    assert_eq!(stats.requests, 4 * 200, "every request counted once");
}

/// `{"cmd": "stats"}` taken mid-traffic on a 4-shard server is
/// snapshot-consistent: the merged counters equal the sums of the
/// `shards` array in the same response — the regression pin for the
/// mid-drain merge.
#[test]
fn stats_merge_is_snapshot_consistent_under_concurrent_traffic() {
    let handle = spawn(
        ctx().detector.clone(),
        ServeConfig {
            shards: 4,
            batch_timeout: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .expect("spawn server");
    let addr = handle.addr();

    let test = ctx().dataset.test();
    let pool: Vec<String> = (0..16)
        .map(|i| render_line(test[i % test.len()].counts()))
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..8)
        .map(|c| {
            let pool = pool.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut wire = Wire::connect(addr);
                let mut r = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let resp = wire.roundtrip(&pool[(c * 3 + r) % pool.len()]);
                    assert!(resp.starts_with("{\"score\":"), "unexpected: {resp}");
                    r += 1;
                }
            })
        })
        .collect();

    let mut stats_wire = Wire::connect(addr);
    for probe in 0..25 {
        let line = stats_wire.roundtrip("{\"cmd\":\"stats\"}");
        let JsonValue(value) = serde_json::from_str(&line).expect("stats is JSON");
        let Content::Map(entries) = value else {
            panic!("stats is not an object: {line}")
        };
        let Some((_, Content::Map(body))) = entries.into_iter().find(|(k, _)| k == "stats") else {
            panic!("no stats body: {line}")
        };
        let field = |name: &str| {
            body.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("stats lacks {name}: {line}"))
        };
        let Content::Seq(shards) = field("shards") else {
            panic!("no shards array: {line}")
        };
        assert_eq!(shards.len(), 4, "one entry per shard");
        for key in [
            "requests",
            "errors",
            "cache_hits",
            "cache_misses",
            "batches",
            "rows_scored",
        ] {
            let merged = u64_of(field(key));
            let sum: u64 = shards
                .iter()
                .map(|shard| {
                    let Content::Map(fields) = shard else {
                        panic!("shard entry is not an object")
                    };
                    fields
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|(_, v)| u64_of(v))
                        .expect("per-shard counter present")
                })
                .sum();
            assert_eq!(
                merged, sum,
                "probe {probe}: merged `{key}` diverges from its per-shard sum: {line}"
            );
        }
    }

    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().expect("client thread");
    }
    drop(handle);
}

/// A reload that fails — a bad artifact, with chaos faults firing
/// around it — answers with a typed `reload_failed` error and leaves
/// the serving generation coherent: scoring continues bit-identical to
/// the installed model, never a torn swap.
#[test]
fn failed_and_chaotic_reloads_never_tear_the_generation() {
    let dir = scratch("chaos");
    let boot = ctx().detector.network().clone();
    let alt = alternate_network(4242);
    let alt_path = export(&dir, "alt.json", &alt);
    let wrong = NetworkBuilder::new(ctx().detector.features().dim() + 5)
        .layer(4, Activation::ReLU)
        .layer(2, Activation::Identity)
        .seed(13)
        .build()
        .expect("wrong-shaped network");
    let wrong_path = export(&dir, "wrong.json", &wrong);

    // Aggressive deterministic faults on every site that can interleave
    // with a reload: slow reads/writes, batch/row panics, score delays.
    let faults = FaultPlan::parse(
        "seed=11,slow_read=@5,slow_write=@4,score_delay=@3,batch_panic=@7,row_panic=@6,delay_ms=2",
    )
    .expect("fault plan");
    let handle: ServerHandle = spawn(
        ctx().detector.clone(),
        ServeConfig {
            shards: 2,
            batch_timeout: Duration::from_millis(1),
            faults,
            ..ServeConfig::default()
        },
    )
    .expect("spawn server");
    let addr = handle.addr();

    let test = ctx().dataset.test();
    let counts = test[0].counts();
    let line = render_line(counts);
    let boot_bits = oracle_bits(&boot, counts);
    let alt_bits = oracle_bits(&alt, counts);

    let mut wire = Wire::connect(addr);
    let mut generation = 0u64;
    let mut tally: HashMap<&str, u32> = HashMap::new();
    for round in 0u32..60 {
        // Interleave: bad reload, traffic, good reload, traffic.
        let (path, should_fail) = if round.is_multiple_of(2) {
            (&wrong_path, true)
        } else {
            (&alt_path, false)
        };
        let resp = wire.roundtrip(&format!("{{\"cmd\":\"reload\",\"path\":\"{path}\"}}"));
        if should_fail {
            assert!(
                resp.contains("\"kind\":\"reload_failed\""),
                "round {round}: expected a typed reload error, got {resp}"
            );
            *tally.entry("rejected").or_default() += 1;
        } else {
            assert!(
                resp.starts_with("{\"reload\":{\"generation\":"),
                "round {round}: expected a reload ack, got {resp}"
            );
            generation += 1;
            *tally.entry("installed").or_default() += 1;
        }
        assert_eq!(
            handle.generation(),
            generation,
            "round {round}: a failed reload must not advance the generation"
        );
        // Scores keep flowing and stay bit-identical to the installed
        // model (chaos may inject typed internal errors; those are fine,
        // a wrong score is not).
        for _ in 0..3 {
            let resp = wire.roundtrip(&line);
            if resp.starts_with("{\"error\":") {
                *tally.entry("faulted").or_default() += 1;
                continue;
            }
            let want = if generation == 0 { boot_bits } else { alt_bits };
            assert_eq!(
                parse_score_bits(&resp),
                want,
                "round {round}: score diverged from the installed model: {resp}"
            );
        }
    }
    assert_eq!(tally["rejected"], 30);
    assert_eq!(tally["installed"], 30);

    let health = handle.health();
    assert_eq!(health.model_generation, generation);
    drop(handle);
}
