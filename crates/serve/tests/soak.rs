//! Concurrency soak test: N client threads hammer a live server over
//! TCP on an ephemeral port; every response must bit-exactly match the
//! offline oracle (feature transform + forward pass computed without
//! the server), no request may be dropped or duplicated, and the final
//! stats counters must sum.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_serve::{spawn, ServeConfig, ServerHandle};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 60;
/// Distinct request vectors; far fewer than total requests so the
/// cache sees plenty of repeats.
const KEYSPACE: usize = 16;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny context"))
}

fn spawn_server(max_batch: usize, cache_capacity: usize) -> ServerHandle {
    spawn(
        ctx().detector.clone(),
        ServeConfig {
            max_batch,
            cache_capacity,
            batch_timeout: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .expect("spawn server")
}

/// The offline oracle: what the score for `counts` must be, computed
/// without the server (single-row forward; batching is bit-identical
/// by the crate's property tests).
fn oracle_score(counts: &[u32]) -> f64 {
    let detector = &ctx().detector;
    let features = detector.features().transform_counts(counts);
    maleva_serve::score_rows(detector.network(), std::slice::from_ref(&features))
        .expect("oracle forward")[0]
}

fn render_line(counts: &[u32]) -> String {
    let entries: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    format!("{{\"features\":[{}]}}", entries.join(","))
}

/// Pulls the `"score"` field out of a response line, failing on error
/// responses.
fn parse_score(line: &str) -> f64 {
    assert!(
        line.starts_with("{\"score\":"),
        "expected a score response, got: {line}"
    );
    let rest = &line["{\"score\":".len()..];
    let end = rest.find(',').expect("fields after score");
    rest[..end].parse().expect("score is a float")
}

#[test]
fn soak_every_response_matches_the_oracle_and_counters_sum() {
    let handle = spawn_server(32, 4096);
    let addr = handle.addr();

    // Request pool + oracle answers, computed before any load.
    let test = ctx().dataset.test();
    let pool: Vec<(String, u64)> = (0..KEYSPACE)
        .map(|i| {
            let counts = test[i % test.len()].counts();
            (render_line(counts), oracle_score(counts).to_bits())
        })
        .collect();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let pool = pool.clone();
            std::thread::spawn(move || -> u64 {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let mut responses = 0u64;
                for r in 0..REQUESTS_PER_CLIENT {
                    // Stagger clients through the keyspace so concurrent
                    // requests mix cache hits, misses, and shared batches.
                    let (line, want_bits) = &pool[(c * 7 + r) % pool.len()];
                    writer.write_all(line.as_bytes()).expect("write");
                    writer.write_all(b"\n").expect("write newline");
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("read response");
                    let got = parse_score(resp.trim_end());
                    assert_eq!(
                        got.to_bits(),
                        *want_bits,
                        "client {c} request {r}: score {got} diverged from oracle"
                    );
                    responses += 1;
                }
                responses
            })
        })
        .collect();

    let total: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .sum();
    // One response per request: nothing dropped, nothing duplicated.
    assert_eq!(total, (CLIENTS * REQUESTS_PER_CLIENT) as u64);

    let stats = handle.shutdown();
    assert_eq!(stats.requests, total, "every request is counted");
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        total,
        "every request is a cache hit or a miss"
    );
    assert_eq!(
        stats.rows_scored, stats.cache_misses,
        "exactly the misses reach the network"
    );
    assert_eq!(stats.errors, 0, "no typed errors under clean load");
    assert_eq!(stats.overloaded, 0, "queue never overflowed");
    // KEYSPACE distinct vectors over CLIENTS*REQUESTS requests: repeats
    // must have hit the cache, and the cache can't exceed the keyspace.
    assert!(
        stats.cache_hits > 0,
        "repeated requests should hit the cache"
    );
    assert!(stats.cache_entries <= KEYSPACE);
}

#[test]
fn soak_without_cache_scores_every_request_and_batches_under_load() {
    let handle = spawn_server(16, 0);
    let addr = handle.addr();

    let test = ctx().dataset.test();
    let pool: Vec<(String, u64)> = (0..KEYSPACE)
        .map(|i| {
            let counts = test[i % test.len()].counts();
            (render_line(counts), oracle_score(counts).to_bits())
        })
        .collect();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                for r in 0..REQUESTS_PER_CLIENT {
                    let (line, want_bits) = &pool[(c + r) % pool.len()];
                    writer.write_all(line.as_bytes()).expect("write");
                    writer.write_all(b"\n").expect("write newline");
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("read response");
                    let got = parse_score(resp.trim_end());
                    assert_eq!(got.to_bits(), *want_bits);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let stats = handle.shutdown();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(stats.requests, total);
    assert_eq!(stats.cache_hits, 0, "cache disabled");
    assert_eq!(
        stats.rows_scored, total,
        "every request reaches the network"
    );
    assert_eq!(stats.errors, 0);
    // 8 concurrent clients against one scorer: at least some batches
    // must have coalesced more than one row.
    assert!(
        stats.batches <= stats.rows_scored,
        "batches {} cannot exceed rows {}",
        stats.batches,
        stats.rows_scored
    );
}

#[test]
fn graceful_shutdown_over_the_wire_drains_and_acknowledges() {
    let handle = spawn_server(8, 128);
    let addr = handle.addr();

    let counts = ctx().dataset.test()[0].counts();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    writer
        .write_all((render_line(counts) + "\n").as_bytes())
        .expect("write score request");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read score");
    assert_eq!(
        parse_score(resp.trim_end()).to_bits(),
        oracle_score(counts).to_bits()
    );

    writer
        .write_all(b"{\"cmd\":\"stats\"}\n")
        .expect("write stats");
    resp.clear();
    reader.read_line(&mut resp).expect("read stats");
    assert!(resp.starts_with("{\"stats\":{"), "stats response: {resp}");
    assert!(
        resp.contains("\"requests\":1"),
        "stats counts the request: {resp}"
    );

    // Prometheus exposition over the wire: multi-line, "# EOF"-terminated.
    writer
        .write_all(b"{\"cmd\":\"metrics\"}\n")
        .expect("write metrics");
    let mut exposition = String::new();
    loop {
        resp.clear();
        reader.read_line(&mut resp).expect("read metrics line");
        if resp.trim_end() == "# EOF" {
            break;
        }
        exposition.push_str(&resp);
    }
    assert!(
        exposition.contains("# TYPE serve_requests_total counter"),
        "metrics exposition: {exposition}"
    );
    assert!(
        exposition.contains("serve_requests_total 1"),
        "{exposition}"
    );
    assert!(
        exposition.contains("serve_request_latency_us_count 1"),
        "{exposition}"
    );

    writer
        .write_all(b"{\"cmd\":\"shutdown\"}\n")
        .expect("write shutdown");
    resp.clear();
    reader.read_line(&mut resp).expect("read ack");
    assert_eq!(resp.trim_end(), "{\"ok\":\"shutting down\"}");

    // join() returns because the wire shutdown stopped the server.
    let stats = handle.join();
    assert_eq!(stats.requests, 1);
}
