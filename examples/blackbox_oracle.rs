//! The paper's Figure 2 black-box framework (left as future work there,
//! implemented here): the attacker knows nothing about the target — they
//! query it as a label oracle, train a substitute over their *own*
//! guessed feature space, augment Jacobian-style, and transfer.
//!
//! ```text
//! cargo run --release --example blackbox_oracle
//! ```

use maleva_core::{blackbox, ExperimentContext, ExperimentScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 23)?;

    let config = blackbox::BlackboxConfig {
        seed_corpus: 80,
        augmentation_rounds: 2,
        vocab_overlap: 0.6,
        gamma: 0.05,
        eval_samples: 40,
        query_budget: 0,
        seed: 23,
    };
    println!(
        "black-box run: seed corpus {}, {} augmentation rounds, attacker vocabulary \
         overlaps ~{:.0}% of the defender's ...\n",
        config.seed_corpus,
        config.augmentation_rounds,
        config.vocab_overlap * 100.0
    );
    let artifacts = blackbox::run(&ctx, &config)?;

    println!("oracle queries spent     : {}", artifacts.oracle_queries);
    println!(
        "attacker vocabulary size : {}",
        artifacts.attacker_vocab.len()
    );
    println!(
        "substitute-oracle agree  : {:.3}",
        artifacts.oracle_agreement
    );
    println!(
        "baseline detection       : {:.3}",
        artifacts.baseline_detection
    );
    println!(
        "post-attack detection    : {:.3}",
        artifacts.target_detection
    );
    println!("transfer (evasion) rate  : {:.3}", artifacts.transfer_rate);
    println!(
        "evasions / attacked      : {} / {}",
        artifacts.evasions, artifacts.attacked
    );
    if let Some(q) = artifacts.queries_to_first_evasion {
        println!("queries to first evasion : {q}");
    }
    println!(
        "\nas the paper's threat hierarchy predicts, black-box is the weakest setting: \
         the attack costs many oracle queries and evades least."
    );
    Ok(())
}
