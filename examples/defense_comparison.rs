//! The Table VI defense comparison: No Defense, adversarial training,
//! defensive distillation, feature squeezing, PCA dimensionality
//! reduction, and the paper-suggested adversarial-training + PCA
//! ensemble — all evaluated on clean / malware / adversarial slices.
//!
//! ```text
//! cargo run --release --example defense_comparison
//! ```

use maleva_core::{defenses, greybox, ExperimentContext, ExperimentScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 17)?;
    let substitute = greybox::train_substitute(&ctx, 17)?;

    // Craft grey-box advex for the defenses at a strength that actually
    // evades the tiny-scale detector, then fit and evaluate every defense.
    let config = defenses::DefenseConfig {
        theta: 0.5,
        gamma: 0.1,
        distill_temperature: 50.0,
        pca_k: 10,
        squeeze_fpr: 0.05,
        advex_train_fraction: 0.5,
        high_confidence: true,
    };
    println!("fitting five defenses + ensemble (this trains six models) ...\n");
    let cmp = defenses::compare_defenses(&ctx, &substitute, &config)?;

    println!(
        "Table V — adversarial-training data:\n{}",
        cmp.render_table_v()
    );
    println!(
        "Table VI — defense testing results:\n{}",
        cmp.render_table_vi()
    );
    println!(
        "paper reference: AdvTraining raises advex TPR 0.304 -> 0.931 while keeping clean \
         TNR; DimReduct detects advex well but clean TNR drops to 0.674."
    );
    Ok(())
}
