//! Grey-box transfer attack: the attacker knows the 491 API features but
//! not the target model or its training data. They train the paper's
//! Table IV substitute on their own corpus, craft adversarial examples
//! against it, and deploy them to the target (paper Section III-B).
//!
//! ```text
//! cargo run --release --example greybox_transfer
//! ```

use maleva_attack::sweep::SweepAxis;
use maleva_core::{greybox, ExperimentContext, ExperimentScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 11)?;
    println!("training the Table IV substitute on the attacker's own corpus ...");
    let substitute = greybox::train_substitute(&ctx, 99)?;

    // Experiment 1: exact features. Sweep attack strength; score both the
    // substitute (white-box view) and the target (transfer view).
    let axis = SweepAxis::Gamma {
        theta: 0.3,
        values: vec![0.0, 0.01, 0.02, 0.05, 0.1, 0.2],
    };
    let curve = greybox::transfer_curve(&ctx, &substitute, 40, axis)?;
    println!(
        "\nexact-features transfer (Figure 4a shape):\n{}",
        curve.render()
    );

    let report = greybox::operating_point(&ctx, &substitute, 40, 0.3, 0.1)?;
    println!(
        "operating point theta 0.3 / gamma 0.1: substitute detection {:.3}, \
         target detection {:.3}, transfer rate {:.3}",
        report.substitute_detection, report.target_detection, report.transfer_rate
    );

    // Experiment 2: the attacker only knows the API *names*, not the
    // count transformation — their substitute uses binary features, and
    // adversarial programs are rebuilt by inserting real API calls.
    let binary = greybox::binary_feature_experiment(&ctx, 99, 40, &[0.0, 0.05, 0.1])?;
    println!(
        "\nbinary-features attack (Figure 4c shape):\n{}",
        binary.curve.render()
    );
    println!(
        "final target detection {:.3} — the attack largely fails without feature knowledge \
         (paper: 0.6951)",
        binary.final_target_detection
    );
    Ok(())
}
