//! The paper's live grey-box test (Section III-B, third experiment): a
//! "security researcher" edits the malware's source code, inserting one
//! single API call repeatedly; the detector's confidence collapses.
//!
//! Here the full loop is mechanized: pick a detected malware program,
//! choose the API with the substitute model, insert it 0, 1, 2, … times,
//! re-render the sandbox log after each edit, and re-scan with the
//! deployed detector pipeline.
//!
//! ```text
//! cargo run --release --example live_evasion
//! ```

use maleva_core::{greybox, live, ExperimentContext, ExperimentScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 13)?;
    let substitute = greybox::train_substitute(&ctx, 13)?;

    let report = live::live_greybox_test(&ctx, &substitute, 16)?;
    println!("{}", report.render());
    println!(
        "confidence: {:.2}% with no edits -> {:.2}% after {} insertions",
        report.initial_confidence() * 100.0,
        report.final_confidence() * 100.0,
        report.confidences.len() - 1
    );
    match report.evaded_at {
        Some(n) => println!("the verdict flipped to CLEAN after {n} insertions"),
        None => println!("the verdict held within this insertion budget"),
    }
    println!("(paper: 98.43% at 0 insertions, 88.88% at 1, 0% at 8)");
    Ok(())
}
