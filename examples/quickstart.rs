//! Quickstart: build the world, train the detector, scan programs, and
//! evade the detector with JSMA — in under a minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use maleva_attack::{detection_rate, EvasionAttack, Jsma};
use maleva_core::{ExperimentContext, ExperimentScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build everything: synthetic corpus (Table I shape), fitted
    //    feature pipeline (491 API-count features), trained target DNN.
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 7)?;
    let (tpr, tnr) = ctx.baseline_rates()?;
    println!("detector trained: malware TPR {tpr:.3}, clean TNR {tnr:.3}");

    // 2. Scan one program end-to-end through its sandbox log.
    let program = &ctx.dataset.test()[0];
    let confidence = ctx.detector.scan(program)?;
    println!(
        "sample #{:>3} ({}, {} API calls): malware confidence {:.2}%",
        0,
        program.family(),
        program.total_calls(),
        confidence * 100.0
    );

    // 3. White-box JSMA: add-only perturbations, theta = 0.3 per feature,
    //    at most 5% of the 491 features.
    let malware = ctx.attack_batch();
    let before = detection_rate(ctx.target(), &malware)?;
    let jsma = Jsma::new(0.3, 0.05);
    let (adversarial, outcomes) = jsma.craft_batch(ctx.target(), &malware)?;
    let after = detection_rate(ctx.target(), &adversarial)?;
    let evaded = outcomes.iter().filter(|o| o.evaded).count();
    println!(
        "JSMA (theta 0.3, gamma 0.05): detection {before:.3} -> {after:.3}, {evaded}/{} evaded",
        outcomes.len()
    );

    // 4. Inspect one adversarial example: which API calls were added?
    if let Some(outcome) = outcomes.iter().find(|o| o.evaded) {
        let names: Vec<&str> = outcome
            .perturbed_features
            .iter()
            .filter_map(|&i| ctx.world.vocab().name(i))
            .collect();
        println!(
            "one evasion added {} API calls: {names:?} (L2 = {:.3})",
            names.len(),
            outcome.l2_distance
        );
    }
    Ok(())
}
