//! Cross-crate attack invariants at the full 491-feature dimension:
//! domain constraints (add-only, feature box, budget) that must hold for
//! *every* attack implementation against the real detector.

use std::sync::OnceLock;

use maleva_attack::{
    CarliniWagnerL2, EnsembleJsma, EvasionAttack, Fgsm, Jsma, RandomAddition, SaliencyPolicy,
    SqueezeAwareJsma,
};
use maleva_core::{ExperimentContext, ExperimentScale};

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 777).expect("context"))
}

fn attacks() -> Vec<Box<dyn EvasionAttack>> {
    vec![
        Box::new(Jsma::new(0.2, 0.05)),
        Box::new(Jsma::new(0.2, 0.05).with_high_confidence()),
        Box::new(Jsma::new(0.2, 0.05).with_policy(SaliencyPolicy::PairwiseProduct)),
        Box::new(Fgsm::new(0.1)),
        Box::new(RandomAddition::new(0.2, 0.05, 3)),
        Box::new(CarliniWagnerL2::new(5.0).with_budget(40, 0.05)),
        Box::new(SqueezeAwareJsma::new(Jsma::new(0.2, 0.05), 0.21, 0.01)),
    ]
}

#[test]
fn every_attack_respects_the_feature_box() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    for attack in attacks() {
        let (adv, _) = attack.craft_batch(ctx.target(), &malware).expect("craft");
        assert!(
            adv.iter().all(|v| (0.0..=1.0).contains(&v)),
            "{} left the [0,1] box",
            attack.name()
        );
    }
}

#[test]
fn every_addonly_attack_is_monotone() {
    // The malware-domain constraint: API calls are only added, so every
    // adversarial feature value must be >= the original.
    let ctx = ctx();
    let malware = ctx.attack_batch();
    for attack in attacks() {
        let (adv, _) = attack.craft_batch(ctx.target(), &malware).expect("craft");
        for r in 0..malware.rows() {
            for (o, a) in malware.row(r).iter().zip(adv.row(r).iter()) {
                assert!(
                    a >= o,
                    "{} removed features (sample {r}): {a} < {o}",
                    attack.name()
                );
            }
        }
    }
}

#[test]
fn jsma_respects_the_gamma_budget_at_491_features() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    for gamma in [0.005, 0.02, 0.05] {
        let jsma = Jsma::new(0.3, gamma);
        let budget = jsma.max_features(491);
        // Cross-check the paper's mapping: gamma 0.025 -> 12 features.
        if (gamma - 0.025).abs() < 1e-12 {
            assert_eq!(budget, 12);
        }
        let (_, outcomes) = jsma.craft_batch(ctx.target(), &malware).expect("craft");
        for o in &outcomes {
            assert!(
                o.features_modified() <= budget,
                "gamma {gamma}: modified {} > budget {budget}",
                o.features_modified()
            );
        }
    }
}

#[test]
fn paper_gamma_mapping_adds_up_to_14_features() {
    // Figure 3(a): gamma in [0 : 0.005 : 0.030] "adding [0 : 2 : 14]
    // features" over 491.
    let expected = [0usize, 2, 4, 7, 9, 12, 14];
    for (i, &e) in expected.iter().enumerate() {
        let gamma = i as f64 * 0.005;
        let jsma = Jsma::new(0.1, gamma.max(1e-9));
        assert_eq!(
            jsma.max_features(491),
            e,
            "gamma {gamma} should admit {e} features"
        );
    }
}

#[test]
fn outcomes_report_consistent_l2() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    let jsma = Jsma::new(0.25, 0.04);
    let (adv, outcomes) = jsma.craft_batch(ctx.target(), &malware).expect("craft");
    for (r, o) in outcomes.iter().enumerate() {
        let manual = maleva_linalg::norm::l2_distance(malware.row(r), adv.row(r));
        assert!((o.l2_distance - manual).abs() < 1e-12);
        // L2 of an add-only theta perturbation over k features is at most
        // theta * sqrt(k).
        let bound = 0.25 * (o.features_modified() as f64).sqrt();
        assert!(o.l2_distance <= bound + 1e-9);
    }
}

#[test]
fn high_confidence_uses_at_least_as_many_features() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    let stop = Jsma::new(0.3, 0.05);
    let exhaust = Jsma::new(0.3, 0.05).with_high_confidence();
    let (_, so) = stop.craft_batch(ctx.target(), &malware).expect("craft");
    let (_, eo) = exhaust.craft_batch(ctx.target(), &malware).expect("craft");
    let sum = |os: &[maleva_attack::AttackOutcome]| -> usize {
        os.iter().map(|o| o.features_modified()).sum()
    };
    assert!(sum(&eo) >= sum(&so));
}

#[test]
fn evaded_flag_agrees_with_the_crafting_model() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    let jsma = Jsma::new(0.3, 0.06);
    let (adv, outcomes) = jsma.craft_batch(ctx.target(), &malware).expect("craft");
    let preds = ctx.target().predict(&adv).expect("predict");
    for (o, &p) in outcomes.iter().zip(preds.iter()) {
        assert_eq!(o.evaded, p == 0, "evaded flag inconsistent with prediction");
    }
}

#[test]
fn ensemble_attack_obeys_constraints_at_491_features() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    let small: Vec<usize> = (0..10.min(malware.rows())).collect();
    let batch = malware.select_rows(&small);
    let members = [ctx.target()];
    let attack = EnsembleJsma::new(0.3, 0.05);
    let (adv, outcomes) = attack.craft_batch(&members, &batch).expect("craft");
    assert!(adv.iter().all(|v| (0.0..=1.0).contains(&v)));
    for (r, o) in outcomes.iter().enumerate() {
        assert!(o.features_modified() <= attack.max_features(491));
        for (orig, a) in batch.row(r).iter().zip(o.adversarial.iter()) {
            assert!(a >= orig, "ensemble attack removed features");
        }
    }
}

#[test]
fn cw_finds_smaller_l2_than_jsma_at_491_features() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    let small: Vec<usize> = (0..10.min(malware.rows())).collect();
    let batch = malware.select_rows(&small);
    let cw = CarliniWagnerL2::new(10.0).with_budget(100, 0.05);
    let jsma = Jsma::new(0.4, 0.2);
    let (_, co) = cw.craft_batch(ctx.target(), &batch).expect("cw");
    let (_, jo) = jsma.craft_batch(ctx.target(), &batch).expect("jsma");
    let joint: Vec<(f64, f64)> = co
        .iter()
        .zip(jo.iter())
        .filter(|(c, j)| c.evaded && j.evaded)
        .map(|(c, j)| (c.l2_distance, j.l2_distance))
        .collect();
    if !joint.is_empty() {
        let cw_mean: f64 = joint.iter().map(|p| p.0).sum::<f64>() / joint.len() as f64;
        let jsma_mean: f64 = joint.iter().map(|p| p.1).sum::<f64>() / joint.len() as f64;
        assert!(
            cw_mean <= jsma_mean * 1.5,
            "C&W L2 should be competitive: {cw_mean} vs JSMA {jsma_mean}"
        );
    }
}

#[test]
fn squeeze_aware_perturbations_survive_trimming() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    let small: Vec<usize> = (0..10.min(malware.rows())).collect();
    let batch = malware.select_rows(&small);
    let trim = 0.31;
    let attack = SqueezeAwareJsma::new(Jsma::new(0.3, 0.05).with_high_confidence(), trim, 0.01);
    let (adv, outcomes) = attack.craft_batch(ctx.target(), &batch).expect("craft");
    for (r, o) in outcomes.iter().enumerate() {
        for &j in &o.perturbed_features {
            assert!(
                adv.get(r, j) >= trim,
                "perturbed feature {j} at {} would be trimmed",
                adv.get(r, j)
            );
        }
    }
}
