//! Seeded regression coverage for the offline black-box pipeline.
//!
//! The campaign subsystem leans on one promise: for a fixed
//! `(scale, seed)`, the black-box attack is a pure function of its
//! configuration — same query sequence, same substitute, same
//! evasions. These tests pin that promise for the tiny seed-42 context
//! so a behavioural drift in the corpus sampler, the augmentation
//! step, or the budget accounting shows up as a failed literal, not as
//! a silently shifted campaign measurement.

use std::sync::OnceLock;

use maleva_core::blackbox::{self, BlackboxConfig, DetectorOracle};
use maleva_core::{ExperimentContext, ExperimentScale};

static CTX: OnceLock<ExperimentContext> = OnceLock::new();

fn ctx() -> &'static ExperimentContext {
    CTX.get_or_init(|| {
        // The literals below are default-backend numbers; pin it so a
        // MALEVA_BACKEND=simd environment (the CI simd leg) cannot
        // flip borderline oracle verdicts out from under them.
        maleva_linalg::set_backend(Some(maleva_linalg::BackendKind::Pooled));
        ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny ctx")
    })
}

/// The pinned attack configuration. Attack seed 13 is the reference
/// attacker for the tiny seed-42 context: it lands several evasions,
/// so the queries-to-evasion accounting below actually exercises the
/// curve (most tiny-context attacker seeds produce none).
fn pinned_config() -> BlackboxConfig {
    BlackboxConfig {
        seed_corpus: 60,
        augmentation_rounds: 1,
        vocab_overlap: 0.6,
        gamma: 0.05,
        eval_samples: 30,
        query_budget: 0,
        seed: 13,
    }
}

#[test]
fn seed_42_pins_query_accounting_agreement_and_evasions() {
    let artifacts = blackbox::run(ctx(), &pinned_config()).expect("blackbox run");
    // Per-phase accounting: 60 seed labels, 60 augmented labels (one
    // round doubles the corpus), an 80-sample agreement probe, and 30
    // attacked programs scanned twice (baseline + rebuilt).
    assert_eq!(artifacts.ledger.seed, 60);
    assert_eq!(artifacts.ledger.augmentation, 60);
    assert_eq!(artifacts.ledger.agreement, 80);
    assert_eq!(artifacts.ledger.evaluation, 60);
    assert_eq!(artifacts.ledger.total(), 260);
    // Extraction cost excludes the evaluation scans.
    assert_eq!(artifacts.oracle_queries, 200);
    assert!(
        (artifacts.oracle_agreement - 0.95).abs() < 1e-12,
        "agreement drifted: {}",
        artifacts.oracle_agreement
    );
    assert_eq!(artifacts.attacked, 30);
    assert_eq!(artifacts.evasions, 4);
    assert_eq!(artifacts.queries_to_first_evasion, Some(216));
    assert_eq!(artifacts.evasion_curve.len(), 4);
    assert_eq!(artifacts.evasion_curve[0].queries, 216);
    assert_eq!(artifacts.evasion_curve[0].evasions, 1);
    assert_eq!(artifacts.evasion_curve[3].evasions, 4);
}

#[test]
fn a_tight_budget_truncates_instead_of_failing() {
    let config = BlackboxConfig {
        query_budget: 100,
        ..pinned_config()
    };
    let artifacts = blackbox::run(ctx(), &config).expect("budgeted run");
    assert!(artifacts.ledger.total() <= 100);
    // The whole seed corpus fits; the augmentation round is truncated
    // to the remaining 40 labels, and nothing is left for the
    // agreement probe or the evaluation.
    assert_eq!(artifacts.ledger.seed, 60);
    assert_eq!(artifacts.ledger.augmentation, 40);
    assert_eq!(artifacts.ledger.agreement, 0);
    assert_eq!(artifacts.attacked, 0);
    assert_eq!(artifacts.evasions, 0);
}

#[test]
fn explicit_detector_oracle_reproduces_the_offline_run() {
    let offline = blackbox::run(ctx(), &pinned_config()).expect("offline run");
    let mut oracle = DetectorOracle::new(&ctx().detector);
    let explicit =
        blackbox::run_with_oracle(ctx(), &pinned_config(), &mut oracle).expect("oracle run");
    assert_eq!(offline.ledger, explicit.ledger);
    assert_eq!(offline.oracle_agreement, explicit.oracle_agreement);
    assert_eq!(offline.evasions, explicit.evasions);
    assert_eq!(offline.evasion_curve, explicit.evasion_curve);
    assert_eq!(
        offline.queries_to_first_evasion,
        explicit.queries_to_first_evasion
    );
}
