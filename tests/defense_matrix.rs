//! Integration tests for the Table V / Table VI defense comparison.

use std::sync::OnceLock;

use maleva_core::{defenses, greybox, ExperimentContext, ExperimentScale};
use maleva_nn::Network;

fn setup() -> &'static (ExperimentContext, Network, defenses::DefenseComparison) {
    static STATE: OnceLock<(ExperimentContext, Network, defenses::DefenseComparison)> =
        OnceLock::new();
    STATE.get_or_init(|| {
        let ctx = ExperimentContext::build(ExperimentScale::tiny(), 2024).expect("context");
        let substitute = greybox::train_substitute(&ctx, 2024).expect("substitute");
        let config = defenses::DefenseConfig {
            theta: 0.5,
            gamma: 0.1,
            distill_temperature: 50.0,
            pca_k: 10,
            squeeze_fpr: 0.05,
            advex_train_fraction: 0.5,
            high_confidence: true,
        };
        let cmp = defenses::compare_defenses(&ctx, &substitute, &config).expect("defenses");
        (ctx, substitute, cmp)
    })
}

#[test]
fn comparison_covers_all_defenses_and_slices() {
    let (_, _, cmp) = setup();
    let defenses = [
        "No Defense",
        "AdvTraining",
        "Distillation",
        "FeaSqueezing",
        "DimReduct",
        "AdvTrain+DimReduct",
    ];
    for d in defenses {
        for slice in ["Clean Test", "Malware Test", "AdvExamples"] {
            let row = cmp.row(d, slice);
            assert!(row.is_some(), "missing ({d}, {slice})");
            let row = row.unwrap();
            assert!(
                row.tpr.is_some() || row.tnr.is_some(),
                "({d}, {slice}) has neither rate"
            );
        }
    }
    assert_eq!(cmp.rows.len(), defenses.len() * 3);
}

#[test]
fn attack_succeeds_against_the_undefended_model() {
    // Table VI's premise: No Defense advex TPR is far below malware TPR
    // (paper: 0.304 vs 0.883).
    let (_, _, cmp) = setup();
    let mal = cmp.row("No Defense", "Malware Test").unwrap().tpr.unwrap();
    let adv = cmp.row("No Defense", "AdvExamples").unwrap().tpr.unwrap();
    assert!(
        adv < mal - 0.2,
        "advex must evade the undefended model: malware {mal} vs advex {adv}"
    );
}

#[test]
fn adversarial_training_restores_advex_detection() {
    // The paper's headline defense result: 0.304 -> 0.931 with clean TNR
    // preserved.
    let (_, _, cmp) = setup();
    let base = cmp.row("No Defense", "AdvExamples").unwrap().tpr.unwrap();
    let defended = cmp.row("AdvTraining", "AdvExamples").unwrap().tpr.unwrap();
    assert!(
        defended > base + 0.2,
        "adversarial training must improve advex TPR: {base} -> {defended}"
    );
    let clean = cmp.row("AdvTraining", "Clean Test").unwrap().tnr.unwrap();
    assert!(clean > 0.75, "clean TNR must be preserved: {clean}");
    let mal = cmp.row("AdvTraining", "Malware Test").unwrap().tpr.unwrap();
    assert!(mal > 0.75, "malware TPR must be preserved: {mal}");
}

#[test]
fn all_reported_rates_are_valid_probabilities() {
    let (_, _, cmp) = setup();
    for row in &cmp.rows {
        for rate in [row.tpr, row.tnr].into_iter().flatten() {
            assert!((0.0..=1.0).contains(&rate), "rate out of range in {row:?}");
        }
    }
}

#[test]
fn table_v_accounts_for_every_sample() {
    let (ctx, _, cmp) = setup();
    let s = &cmp.advtrain_summary;
    // Everything trained on = original training set + advex-train minus
    // removed duplicates.
    assert_eq!(
        s.total() + s.duplicates_removed,
        ctx.x_train.rows() + cmp.advex_train
    );
    assert!(cmp.advex_eval > 0);
    let rendered = cmp.render_table_v();
    assert!(rendered.contains("Training Set"));
}

#[test]
fn table_vi_renders_every_defense_block() {
    let (_, _, cmp) = setup();
    let text = cmp.render_table_vi();
    for d in [
        "No Defense",
        "AdvTraining",
        "Distillation",
        "FeaSqueezing",
        "DimReduct",
    ] {
        assert!(text.contains(d), "missing {d} in rendered table:\n{text}");
    }
    assert!(text.contains("nan"), "undefined rates print as nan");
}

#[test]
fn squeezer_detects_advex_above_its_false_alarm_rate() {
    let (_, _, cmp) = setup();
    let clean_tnr = cmp.row("FeaSqueezing", "Clean Test").unwrap().tnr.unwrap();
    let adv_tpr = cmp.row("FeaSqueezing", "AdvExamples").unwrap().tpr.unwrap();
    // Detection of advex must exceed the false-alarm rate on clean
    // (otherwise the detector carries no signal).
    let false_alarm = 1.0 - clean_tnr;
    assert!(
        adv_tpr > false_alarm,
        "squeezer signal-free: advex {adv_tpr} vs false alarms {false_alarm}"
    );
}
