//! End-to-end integration tests: the full pipeline from synthetic world
//! through feature extraction, detector training, attack and evaluation —
//! pinning the paper's qualitative results at test scale.

use std::sync::OnceLock;

use maleva_attack::{detection_rate, EvasionAttack, Jsma, RandomAddition};
use maleva_core::{greybox, live, whitebox, ExperimentContext, ExperimentScale};

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 1234).expect("context"))
}

#[test]
fn detector_learns_with_realistic_error_rates() {
    let (tpr, tnr) = ctx().baseline_rates().expect("rates");
    // The paper's baseline is TPR 0.883 / TNR 0.964: good but imperfect.
    assert!(tpr > 0.75, "TPR {tpr}");
    assert!(tnr > 0.75, "TNR {tnr}");
    assert!(tpr < 1.0 || tnr < 1.0, "implausibly perfect detector");
}

#[test]
fn whitebox_jsma_collapses_detection_but_random_noise_does_not() {
    let ctx = ctx();
    let malware = ctx.attack_batch();
    let before = detection_rate(ctx.target(), &malware).expect("baseline");

    let jsma = Jsma::new(0.3, 0.06);
    let (adv, _) = jsma.craft_batch(ctx.target(), &malware).expect("craft");
    let after_jsma = detection_rate(ctx.target(), &adv).expect("rate");

    let random = RandomAddition::new(0.3, 0.06, 99);
    let (adv_r, _) = random.craft_batch(ctx.target(), &malware).expect("craft");
    let after_random = detection_rate(ctx.target(), &adv_r).expect("rate");

    assert!(
        after_jsma < before - 0.3,
        "JSMA must collapse detection: {before} -> {after_jsma}"
    );
    assert!(
        after_random > before - 0.1,
        "random addition must stay near baseline: {before} -> {after_random}"
    );
}

#[test]
fn whitebox_gamma_curve_is_monotone_nonincreasing() {
    let curve = whitebox::curve(
        ctx(),
        40,
        maleva_attack::sweep::SweepAxis::Gamma {
            theta: 0.3,
            values: vec![0.0, 0.02, 0.05, 0.1, 0.2],
        },
    )
    .expect("curve");
    assert_eq!(
        curve.is_nonincreasing("jsma:target", 0.03),
        Some(true),
        "white-box curve must decline: {:?}",
        curve.series_named("jsma:target").unwrap().values
    );
}

#[test]
fn greybox_transfer_is_weaker_than_whitebox() {
    let ctx = ctx();
    let substitute = greybox::train_substitute(ctx, 77).expect("substitute");
    let malware = ctx.attack_batch();

    let jsma = Jsma::new(0.4, 0.1).with_high_confidence();
    let (wb, _) = jsma.craft_batch(ctx.target(), &malware).expect("wb");
    let (gb, _) = jsma.craft_batch(&substitute, &malware).expect("gb");
    let wb_rate = detection_rate(ctx.target(), &wb).expect("rate");
    let gb_rate = detection_rate(ctx.target(), &gb).expect("rate");
    assert!(
        wb_rate <= gb_rate + 0.05,
        "white-box ({wb_rate}) must be at least as strong as grey-box transfer ({gb_rate})"
    );
}

#[test]
fn l2_geometry_matches_figure_5_at_full_dimension() {
    // At 491 dimensions the blind-spot ordering emerges:
    // d(mal, adv) < d(mal, clean) ≤ d(clean, adv).
    let ctx = ctx();
    let malware = ctx.attack_batch();
    let clean = ctx.clean_batch();
    let jsma = Jsma::new(0.2, 0.03);
    let (adv, _) = jsma.craft_batch(ctx.target(), &malware).expect("craft");
    let stats = maleva_attack::perturbation::l2_stats(&malware, &adv, &clean, 3000).expect("stats");
    assert!(
        stats.malware_to_adversarial < stats.malware_to_clean,
        "adv examples must stay near their malware: {stats:?}"
    );
    assert!(
        stats.malware_to_clean <= stats.clean_to_adversarial + 0.05,
        "adv examples must not approach the clean population: {stats:?}"
    );
}

#[test]
fn live_greybox_loop_cuts_confidence_through_the_log_path() {
    let ctx = ctx();
    let substitute = greybox::train_substitute(ctx, 31).expect("substitute");
    let report = live::live_greybox_test(ctx, &substitute, 16).expect("live");
    assert!(report.initial_confidence() >= 0.5);
    assert!(
        report.final_confidence() < report.initial_confidence(),
        "inserting the chosen API must reduce confidence: {:?}",
        report.confidences
    );
    // Confidence values all valid probabilities.
    assert!(report.confidences.iter().all(|c| (0.0..=1.0).contains(c)));
}

#[test]
fn binary_feature_attack_fails_where_exact_features_succeed() {
    let ctx = ctx();
    let report = greybox::binary_feature_experiment(ctx, 5, 30, &[0.0, 0.05, 0.1])
        .expect("binary experiment");
    // Substitute is evaded in its own (binary) space...
    let sub = report
        .curve
        .series_named("jsma:substitute")
        .expect("series");
    assert!(sub.values.last().unwrap() < &sub.values[0]);
    // ...but the target holds up much better (paper: 0.6951 detection).
    assert!(
        report.final_target_detection > 0.5,
        "target detection {}",
        report.final_target_detection
    );
}

#[test]
fn scan_path_and_matrix_path_agree() {
    let ctx = ctx();
    // End-to-end scan (render log → parse → featurize → classify) agrees
    // with the bulk matrix path used by the experiments.
    for (i, prog) in ctx.dataset.test().iter().take(10).enumerate() {
        let conf = ctx.detector.scan(prog).expect("scan");
        let x = ctx.detector.featurize(std::slice::from_ref(prog));
        let p = ctx.detector.network().predict_proba(&x).expect("proba");
        assert!(
            (conf - p.get(0, 1)).abs() < 1e-12,
            "sample {i}: scan {conf} != matrix {}",
            p.get(0, 1)
        );
    }
}

#[test]
fn dataset_tables_render_with_correct_totals() {
    let ctx = ctx();
    let table = ctx.dataset.render_table_i();
    let spec = &ctx.scale.dataset;
    assert!(table.contains(&format!("{}", spec.train_total())));
    assert!(table.contains(&format!("{}", spec.test_total())));
}
