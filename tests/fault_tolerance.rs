//! Cross-crate fault-tolerance guarantees at the full 491-feature
//! dimension: a panicking or erroring attack on one sample must not
//! poison the rest of the batch, and the failure-budget policy must
//! abort loudly when too many rows fail.

use std::sync::OnceLock;

use maleva_attack::{
    craft_batch_parallel_with, AttackOutcome, BatchPolicy, EvasionAttack, FailureBudget, Jsma,
    RowOutcome,
};
use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_nn::{Network, NnError};

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ExperimentScale::tiny(), 777).expect("context"))
}

/// Wraps JSMA but panics or errors on a fixed set of row indices,
/// identified by pointer-free means: the crafting order is not
/// guaranteed, so rows are marked by content (an out-of-domain value in
/// column 0 — real features live in [0, 1]).
struct Sabotaged {
    inner: Jsma,
    panic_mark: f64,
    err_mark: f64,
}

impl EvasionAttack for Sabotaged {
    fn name(&self) -> &str {
        "sabotaged-jsma"
    }

    fn craft(&self, net: &Network, sample: &[f64]) -> Result<AttackOutcome, NnError> {
        if sample[0] == self.panic_mark {
            panic!("injected fault");
        }
        if sample[0] == self.err_mark {
            return Err(NnError::InvalidConfig {
                detail: "injected fault".into(),
            });
        }
        self.inner.craft(net, sample)
    }
}

const PANIC_MARK: f64 = 2.0;
const ERR_MARK: f64 = 3.0;

fn sabotaged() -> Sabotaged {
    Sabotaged {
        inner: Jsma::new(0.2, 0.05),
        panic_mark: PANIC_MARK,
        err_mark: ERR_MARK,
    }
}

/// The acceptance scenario: one sample's attack panics mid-batch. The
/// report must call out exactly that row as `Panicked`, degrade it to
/// the unperturbed input, and leave every other row bit-identical to a
/// sequential single-row craft.
#[test]
fn panicked_sample_is_isolated_from_the_rest_of_the_batch() {
    let ctx = ctx();
    let mut batch = ctx.attack_batch();
    let victim = 1;
    batch.set(victim, 0, PANIC_MARK);

    let jsma = Jsma::new(0.2, 0.05);
    let policy = BatchPolicy::new()
        .threads(4)
        .failure_budget(FailureBudget::Degrade);
    let report = craft_batch_parallel_with(&sabotaged(), ctx.target(), &batch, &policy)
        .expect("degrade policy tolerates the fault");

    assert_eq!(report.rows.len(), batch.rows());
    assert_eq!(report.panicked_count(), 1);
    for (r, outcome) in report.rows.iter().enumerate() {
        if r == victim {
            match outcome {
                RowOutcome::Panicked { message } => {
                    assert!(message.contains("injected fault"), "payload: {message}");
                }
                other => panic!("victim row should be Panicked, got {other:?}"),
            }
            assert_eq!(
                report.adversarial.row(r),
                batch.row(r),
                "victim must degrade"
            );
        } else {
            let reference = jsma.craft(ctx.target(), batch.row(r)).expect("sequential");
            match outcome {
                RowOutcome::Ok(o) => assert_eq!(o, &reference, "row {r} diverged"),
                other => panic!("row {r} should be Ok, got {other:?}"),
            }
            assert_eq!(
                report.adversarial.row(r),
                reference.adversarial.as_slice(),
                "row {r} adversarial bytes diverged"
            );
        }
    }
}

/// An erroring row (as opposed to a panicking one) carries the typed
/// error and likewise degrades without disturbing its neighbours.
#[test]
fn erroring_sample_carries_the_typed_error() {
    let ctx = ctx();
    let mut batch = ctx.attack_batch();
    batch.set(0, 0, ERR_MARK);

    let policy = BatchPolicy::new()
        .threads(2)
        .failure_budget(FailureBudget::Degrade);
    let report = craft_batch_parallel_with(&sabotaged(), ctx.target(), &batch, &policy)
        .expect("degrade policy tolerates the fault");

    assert_eq!(report.err_count(), 1);
    match &report.rows[0] {
        RowOutcome::Err(NnError::InvalidConfig { detail }) => {
            assert_eq!(detail, "injected fault");
        }
        other => panic!("row 0 should carry the typed error, got {other:?}"),
    }
    assert_eq!(report.adversarial.row(0), batch.row(0));
    assert!(report.rows[1..].iter().all(RowOutcome::is_ok));
}

/// A strict failure budget aborts the whole batch with a `BatchFailure`
/// naming the damage, instead of silently degrading.
#[test]
fn exceeded_failure_budget_aborts_the_batch() {
    let ctx = ctx();
    let mut batch = ctx.attack_batch();
    batch.set(0, 0, PANIC_MARK);
    batch.set(1, 0, ERR_MARK);

    let policy = BatchPolicy::new()
        .threads(3)
        .failure_budget(FailureBudget::AbortAbove { fraction: 0.02 });
    let err = craft_batch_parallel_with(&sabotaged(), ctx.target(), &batch, &policy)
        .expect_err("two faults exceed a 2% budget");
    match err {
        NnError::BatchFailure { failed, total, .. } => {
            assert_eq!(failed, 2);
            assert_eq!(total, batch.rows());
        }
        other => panic!("expected BatchFailure, got {other:?}"),
    }
}
