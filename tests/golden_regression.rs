//! Golden regression test: pins the tiny-scale, seed-42 numbers for
//! Figure 3(a) (white-box γ sweep) and Table VI (defense comparison) to
//! literals, so any change to the data pipeline, training loop, attack,
//! or defenses that shifts results — even by one ULP-visible digit at
//! six decimals — fails loudly instead of drifting silently.
//!
//! If a change *intentionally* alters these numbers (new RNG stream,
//! different training schedule, attack fix), re-harvest by running the
//! ignored `harvest_golden_values` test with `--nocapture` and paste the
//! printed literals here.

use std::sync::OnceLock;

use maleva_core::{defenses, greybox, whitebox, ExperimentContext, ExperimentScale};

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        // These literals are the *default-backend* numbers; pin it so a
        // MALEVA_BACKEND=simd environment (the CI simd leg) cannot skew
        // them. The Simd counterpart lives in `golden_simd.rs`.
        maleva_linalg::set_backend(Some(maleva_linalg::BackendKind::Pooled));
        ExperimentContext::build(ExperimentScale::tiny(), 42).expect("tiny context")
    })
}

fn fmt(x: f64) -> String {
    format!("{x:.6}")
}

fn gamma_curve() -> &'static maleva_eval::SecurityCurve {
    static CURVE: OnceLock<maleva_eval::SecurityCurve> = OnceLock::new();
    CURVE.get_or_init(|| {
        whitebox::gamma_curve(ctx(), ctx().scale.attack_samples).expect("fig3a curve")
    })
}

fn comparison() -> &'static defenses::DefenseComparison {
    static CMP: OnceLock<defenses::DefenseComparison> = OnceLock::new();
    CMP.get_or_init(|| {
        let substitute = greybox::train_substitute(ctx(), ctx().seed ^ 0x5B).expect("substitute");
        defenses::compare_defenses(ctx(), &substitute, &defenses::DefenseConfig::default())
            .expect("defense comparison")
    })
}

/// Run with `cargo test -p maleva-core --test golden_regression -- \
/// --ignored --nocapture harvest` to print fresh literals.
#[test]
#[ignore = "harvester for the pinned literals below"]
fn harvest_golden_values() {
    let curve = gamma_curve();
    println!("strength: {:?}", curve.strength);
    for series in &curve.series {
        let values: Vec<String> = series.values.iter().map(|&v| fmt(v)).collect();
        println!("series {:?}: {:?}", series.name, values);
    }
    let cmp = comparison();
    for row in &cmp.rows {
        println!(
            "({:?}, {:?}): tpr {:?} tnr {:?}",
            row.defense,
            row.dataset,
            row.tpr.map(fmt),
            row.tnr.map(fmt)
        );
    }
}

#[test]
fn figure3a_gamma_curve_is_pinned() {
    let curve = gamma_curve();
    let gammas: Vec<String> = curve.strength.iter().map(|&g| format!("{g:.3}")).collect();
    assert_eq!(
        gammas,
        ["0.000", "0.005", "0.010", "0.015", "0.020", "0.025", "0.030"]
    );

    // The paper's qualitative shape: JSMA collapses detection as γ
    // grows, the random control stays flat. These exact rates are the
    // tiny-scale, seed-42 reproduction of that curve.
    let jsma = curve.series_named("jsma:target").expect("jsma series");
    let got: Vec<String> = jsma.values.iter().map(|&v| fmt(v)).collect();
    assert_eq!(
        got,
        ["0.900000", "0.900000", "0.900000", "0.875000", "0.875000", "0.800000", "0.750000"],
        "Figure 3(a) jsma:target detection rates moved"
    );

    let random = curve.series_named("random:target").expect("random series");
    let got: Vec<String> = random.values.iter().map(|&v| fmt(v)).collect();
    assert_eq!(
        got,
        ["0.900000", "0.900000", "0.900000", "0.900000", "0.900000", "0.900000", "0.900000"],
        "Figure 3(a) random:target detection rates moved"
    );
}

#[test]
fn table_vi_defense_rates_are_pinned() {
    let cmp = comparison();
    // (defense, slice, tpr, tnr) — None where the slice has no such rate.
    let golden: &[(&str, &str, Option<&str>, Option<&str>)] = &[
        ("No Defense", "Clean Test", None, Some("0.775000")),
        ("No Defense", "Malware Test", Some("0.900000"), None),
        ("No Defense", "AdvExamples", Some("0.700000"), None),
        ("AdvTraining", "Clean Test", None, Some("0.675000")),
        ("AdvTraining", "Malware Test", Some("0.975000"), None),
        ("AdvTraining", "AdvExamples", Some("1.000000"), None),
        ("Distillation", "Clean Test", None, Some("0.775000")),
        ("Distillation", "Malware Test", Some("0.925000"), None),
        ("Distillation", "AdvExamples", Some("0.800000"), None),
        ("FeaSqueezing", "Clean Test", None, Some("0.825000")),
        ("FeaSqueezing", "Malware Test", None, Some("0.750000")),
        ("FeaSqueezing", "AdvExamples", Some("0.250000"), None),
        ("DimReduct", "Clean Test", None, Some("0.825000")),
        ("DimReduct", "Malware Test", Some("0.875000"), None),
        ("DimReduct", "AdvExamples", Some("0.800000"), None),
        ("AdvTrain+DimReduct", "Clean Test", None, Some("0.800000")),
        ("AdvTrain+DimReduct", "Malware Test", Some("0.925000"), None),
        ("AdvTrain+DimReduct", "AdvExamples", Some("0.900000"), None),
    ];
    assert_eq!(cmp.rows.len(), golden.len(), "Table VI row count moved");
    for (defense, dataset, tpr, tnr) in golden {
        let row = cmp.row(defense, dataset).expect("row exists");
        assert_eq!(
            row.tpr.map(fmt).as_deref(),
            *tpr,
            "Table VI ({defense}, {dataset}) TPR moved"
        );
        assert_eq!(
            row.tnr.map(fmt).as_deref(),
            *tnr,
            "Table VI ({defense}, {dataset}) TNR moved"
        );
    }
}
