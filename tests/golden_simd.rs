//! Tolerance-based golden regression for the **Simd** linalg backend:
//! quick-scale, seed-42 Figure 3(a) (white-box γ sweep) and Table VI
//! (defense comparison), the counterpart of the bit-exact
//! default-backend goldens in `golden_regression.rs`.
//!
//! The Simd backend computes in f32, so its contract is tolerance, not
//! bits: every pinned rate must sit within [`RATE_TOL`] of the literal
//! harvested under Simd (which, at quick scale, coincides with the
//! default-backend numbers — no verdict sits close enough to a decision
//! boundary for f32 rounding to flip it; that agreement is itself part
//! of what this test pins). A kernel bug that degrades accuracy beyond
//! a few borderline sample flips, or any pipeline change that moves the
//! experiment, fails loudly here under `MALEVA_BACKEND=simd` CI.
//!
//! Re-harvest after intentional changes with the ignored
//! `harvest_simd_golden_values` test (`--ignored --nocapture`).

use std::sync::OnceLock;

use maleva_core::{defenses, greybox, whitebox, ExperimentContext, ExperimentScale};
use maleva_linalg::BackendKind;

/// Absolute tolerance on pinned detection/true-negative rates. Quick
/// scale evaluates hundreds of samples per rate, so this admits a
/// handful of borderline f32 verdict flips while still failing on any
/// real behavioral shift (the Figure 3(a) story moves rates by >= 0.1).
const RATE_TOL: f64 = 0.02;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        // Force the backend under test regardless of the ambient
        // MALEVA_BACKEND — this binary *is* the simd golden.
        maleva_linalg::set_backend(Some(BackendKind::Simd));
        ExperimentContext::build(ExperimentScale::quick(), 42).expect("quick context")
    })
}

fn gamma_curve() -> &'static maleva_eval::SecurityCurve {
    static CURVE: OnceLock<maleva_eval::SecurityCurve> = OnceLock::new();
    CURVE.get_or_init(|| {
        whitebox::gamma_curve(ctx(), ctx().scale.attack_samples).expect("fig3a curve")
    })
}

fn comparison() -> &'static defenses::DefenseComparison {
    static CMP: OnceLock<defenses::DefenseComparison> = OnceLock::new();
    CMP.get_or_init(|| {
        let substitute = greybox::train_substitute(ctx(), ctx().seed ^ 0x5B).expect("substitute");
        defenses::compare_defenses(ctx(), &substitute, &defenses::DefenseConfig::default())
            .expect("defense comparison")
    })
}

fn assert_rate(got: Option<f64>, want: Option<f64>, what: &str) {
    match (got, want) {
        (None, None) => {}
        (Some(g), Some(w)) => assert!(
            (g - w).abs() <= RATE_TOL,
            "{what}: got {g:.6}, pinned {w:.6} (tol {RATE_TOL})"
        ),
        _ => panic!("{what}: presence mismatch (got {got:?}, pinned {want:?})"),
    }
}

/// Run with `cargo test -p maleva-core --test golden_simd -- \
/// --ignored --nocapture harvest` to print fresh literals.
#[test]
#[ignore = "harvester for the pinned literals below"]
fn harvest_simd_golden_values() {
    let curve = gamma_curve();
    println!("strength: {:?}", curve.strength);
    for series in &curve.series {
        let values: Vec<String> = series.values.iter().map(|&v| format!("{v:.6}")).collect();
        println!("series {:?}: {:?}", series.name, values);
    }
    let cmp = comparison();
    for row in &cmp.rows {
        println!(
            "({:?}, {:?}): tpr {:?} tnr {:?}",
            row.defense, row.dataset, row.tpr, row.tnr
        );
    }
}

#[test]
fn figure3a_gamma_curve_is_pinned_within_tolerance() {
    let curve = gamma_curve();
    let gammas: Vec<String> = curve.strength.iter().map(|&g| format!("{g:.3}")).collect();
    assert_eq!(
        gammas,
        ["0.000", "0.005", "0.010", "0.015", "0.020", "0.025", "0.030"]
    );

    let jsma = curve.series_named("jsma:target").expect("jsma series");
    let pinned_jsma = [
        0.893333, 0.866667, 0.793333, 0.636667, 0.520000, 0.373333, 0.273333,
    ];
    assert_eq!(jsma.values.len(), pinned_jsma.len());
    for (i, (&got, &want)) in jsma.values.iter().zip(pinned_jsma.iter()).enumerate() {
        assert_rate(Some(got), Some(want), &format!("jsma:target[{i}]"));
    }

    let random = curve.series_named("random:target").expect("random series");
    let pinned_random = [
        0.893333, 0.890000, 0.890000, 0.886667, 0.890000, 0.890000, 0.893333,
    ];
    assert_eq!(random.values.len(), pinned_random.len());
    for (i, (&got, &want)) in random.values.iter().zip(pinned_random.iter()).enumerate() {
        assert_rate(Some(got), Some(want), &format!("random:target[{i}]"));
    }

    // The paper's qualitative shape must survive f32: JSMA collapses
    // detection as γ grows, the random control barely moves.
    assert!(
        jsma.values.last().unwrap() + 0.1 < jsma.values[0],
        "JSMA no longer degrades detection under Simd"
    );
}

#[test]
fn table_vi_defense_rates_are_pinned_within_tolerance() {
    let cmp = comparison();
    // (defense, slice, tpr, tnr) — None where the slice has no such rate.
    let golden: &[(&str, &str, Option<f64>, Option<f64>)] = &[
        ("No Defense", "Clean Test", None, Some(0.906667)),
        ("No Defense", "Malware Test", Some(0.893333), None),
        ("No Defense", "AdvExamples", Some(0.506667), None),
        ("AdvTraining", "Clean Test", None, Some(0.873333)),
        ("AdvTraining", "Malware Test", Some(0.890000), None),
        ("AdvTraining", "AdvExamples", Some(0.980000), None),
        ("Distillation", "Clean Test", None, Some(0.856667)),
        ("Distillation", "Malware Test", Some(0.880000), None),
        ("Distillation", "AdvExamples", Some(0.793333), None),
        ("FeaSqueezing", "Clean Test", None, Some(0.930000)),
        ("FeaSqueezing", "Malware Test", None, Some(0.986667)),
        ("FeaSqueezing", "AdvExamples", Some(0.133333), None),
        ("DimReduct", "Clean Test", None, Some(0.860000)),
        ("DimReduct", "Malware Test", Some(0.880000), None),
        ("DimReduct", "AdvExamples", Some(0.806667), None),
        ("AdvTrain+DimReduct", "Clean Test", None, Some(0.850000)),
        ("AdvTrain+DimReduct", "Malware Test", Some(0.876667), None),
        ("AdvTrain+DimReduct", "AdvExamples", Some(0.946667), None),
    ];
    assert_eq!(cmp.rows.len(), golden.len(), "Table VI row count moved");
    for (defense, dataset, tpr, tnr) in golden {
        let row = cmp.row(defense, dataset).expect("row exists");
        assert_rate(
            row.tpr,
            *tpr,
            &format!("Table VI ({defense}, {dataset}) TPR"),
        );
        assert_rate(
            row.tnr,
            *tnr,
            &format!("Table VI ({defense}, {dataset}) TNR"),
        );
    }
}
