//! Cross-crate observability tests: the instrumented pipeline emits
//! well-formed, balanced spans; tracing never changes numeric results;
//! and provenance manifests are byte-stable modulo timestamps.
//!
//! The trace sink is process-global, so every test that installs one
//! holds `sink_lock()` for its whole body.

use std::sync::{Mutex, MutexGuard};

use maleva_attack::parallel::craft_batch_parallel;
use maleva_attack::Jsma;
use maleva_core::{ExperimentContext, ExperimentScale};
use maleva_obs::manifest::fnv1a_64;
use maleva_obs::{trace, ManifestBuilder};

fn sink_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Number of lines with `"ev":"<kind>"`, optionally restricted to one
/// span name.
fn count(lines: &[String], kind: &str, name: Option<&str>) -> usize {
    lines
        .iter()
        .filter(|l| l.contains(&format!("\"ev\":\"{kind}\"")))
        .filter(|l| name.is_none_or(|n| l.contains(&format!("\"name\":\"{n}\""))))
        .count()
}

#[test]
fn context_build_emits_balanced_pipeline_and_training_spans() {
    let _guard = sink_lock();
    let captured = trace::install_memory_sink();
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 7).expect("context");
    trace::install(trace::Sink::Disabled).expect("uninstall");
    drop(ctx);

    let lines = captured.lines();
    assert!(!lines.is_empty(), "context build emitted no trace records");
    for line in &lines {
        assert!(
            line.starts_with("{\"ev\":\"") && line.ends_with('}'),
            "malformed record: {line}"
        );
    }
    // Every phase of the build shows up, and the training loop emits
    // one span per epoch plus the per-epoch stats event.
    for name in [
        "pipeline.build",
        "pipeline.dataset",
        "pipeline.features",
        "pipeline.train_target",
        "train.fit",
        "train.epoch",
    ] {
        assert!(
            count(&lines, "enter", Some(name)) > 0,
            "no '{name}' span in the build trace"
        );
    }
    assert!(count(&lines, "event", Some("train.epoch_stats")) > 0);
    assert_eq!(
        count(&lines, "enter", None),
        count(&lines, "exit", None),
        "span enters and exits must balance"
    );
    assert_eq!(
        count(&lines, "enter", Some("train.epoch")),
        count(&lines, "event", Some("train.epoch_stats")),
        "one stats event per epoch"
    );
}

#[test]
fn attack_batch_emits_one_span_per_row() {
    let _guard = sink_lock();
    // Build untraced so only attack records are captured.
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 11).expect("context");
    let batch = {
        let full = ctx.attack_batch();
        let idx: Vec<usize> = (0..full.rows().min(12)).collect();
        full.select_rows(&idx)
    };

    let captured = trace::install_memory_sink();
    let (_, outcomes) =
        craft_batch_parallel(&Jsma::new(0.15, 0.025), ctx.target(), &batch, 2).expect("craft");
    trace::install(trace::Sink::Disabled).expect("uninstall");

    let lines = captured.lines();
    assert_eq!(count(&lines, "enter", Some("attack.batch")), 1);
    assert_eq!(count(&lines, "enter", Some("attack.row")), batch.rows());
    assert_eq!(outcomes.len(), batch.rows());
    // Each row runs at least one JSMA craft inside its row span.
    assert!(count(&lines, "enter", Some("jsma.craft")) >= batch.rows());
    assert_eq!(count(&lines, "enter", None), count(&lines, "exit", None));
}

#[test]
fn tracing_is_a_pure_observer_of_scan_scores() {
    let _guard = sink_lock();
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 13).expect("context");
    let prog = &ctx.dataset.test()[0];
    let log = prog.render_log(ctx.world.vocab());

    trace::install(trace::Sink::Disabled).expect("disable");
    let quiet = ctx.detector.scan_log(&log).expect("scan untraced");

    let captured = trace::install_memory_sink();
    let traced = ctx.detector.scan_log(&log).expect("scan traced");
    trace::install(trace::Sink::Disabled).expect("uninstall");

    assert_eq!(
        quiet.to_bits(),
        traced.to_bits(),
        "tracing changed the scan score: {quiet} vs {traced}"
    );
    let lines = captured.lines();
    assert_eq!(count(&lines, "enter", Some("pipeline.scan")), 1);
    let exit = lines
        .iter()
        .find(|l| l.contains("\"ev\":\"exit\"") && l.contains("\"name\":\"pipeline.scan\""))
        .expect("pipeline.scan exit record");
    assert!(
        exit.contains("\"score\":"),
        "scan exit lacks the score field: {exit}"
    );
}

#[test]
fn quick_scale_manifest_is_byte_stable_modulo_timestamps() {
    let config = "repro scale=quick seed=42 exp=all";
    let build = || {
        ManifestBuilder::new("repro")
            .seed(42)
            .scale("quick")
            .config(config)
            .phase_secs("build_context", 1.5)
            .build()
    };
    let a = build();
    std::thread::sleep(std::time::Duration::from_millis(5));
    let mut b = build();
    b.phases[0].seconds = 9.75; // simulate a different wall-clock reading
    assert_eq!(a.to_json_normalized(), b.to_json_normalized());

    // Golden shape: fixed field order, one scalar per line, zeroed
    // timestamps. The version comes from the unified workspace version.
    let expected = format!(
        "{{\n  \"tool\": \"repro\",\n  \"version\": \"{v}\",\n  \"seed\": 42,\n  \
         \"scale\": \"quick\",\n  \"config_hash\": \"{h:016x}\",\n  \"created_unix\": 0,\n  \
         \"crates\": {{\n    \"maleva-obs\": \"{v}\"\n  }},\n  \"phases\": [\n    \
         {{ \"name\": \"build_context\", \"seconds\": 0.000000 }}\n  ],\n  \"extra\": {{\n  }}\n}}\n",
        v = env!("CARGO_PKG_VERSION"),
        h = fnv1a_64(config),
    );
    assert_eq!(a.to_json_normalized(), expected);
}
