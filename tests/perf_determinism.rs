//! Thread-count determinism: the full seed-42 quick-scale Figure 3(a)
//! pipeline — dataset synthesis, target training, JSMA γ sweep — must
//! produce **byte-identical** results whether the linalg pool partitions
//! its matmuls across 1, 2, or 8 threads.
//!
//! This is the end-to-end companion to the per-kernel bit-identity
//! proptests in `crates/linalg/tests/kernel_bitident.rs`: it pins the
//! invariant that `MALEVA_THREADS` (and `--threads`) is a pure
//! performance knob. The thread count controls how output rows are
//! *partitioned*, not what each element accumulates, so the comparison
//! holds on any machine regardless of how many cores actually exist.

use maleva_core::{whitebox, ExperimentContext, ExperimentScale};
use maleva_linalg::pool;

/// Runs the whole fig3a pipeline under a forced thread count and folds
/// every curve value's raw f64 bits (order-sensitive) into a byte string.
fn fig3a_bytes(threads: usize) -> Vec<u8> {
    pool::set_threads(threads);
    let ctx = ExperimentContext::build(ExperimentScale::quick(), 42).expect("quick context");
    let curve = whitebox::gamma_curve(&ctx, ctx.scale.attack_samples).expect("fig3a curve");
    let mut bytes = Vec::new();
    for &s in &curve.strength {
        bytes.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    for series in &curve.series {
        bytes.extend_from_slice(series.name.as_bytes());
        bytes.push(0);
        for &v in &series.values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    bytes
}

/// One test (not three) so the global thread override is never raced by
/// the harness running sibling tests concurrently.
#[test]
fn fig3a_is_byte_identical_across_thread_counts() {
    let baseline = fig3a_bytes(1);
    assert!(!baseline.is_empty(), "fig3a produced an empty curve");
    for threads in [2, 8] {
        let run = fig3a_bytes(threads);
        assert_eq!(
            run, baseline,
            "fig3a bytes diverged between 1 thread and {threads} threads"
        );
    }
    // Clear the override so this binary's state does not suggest the
    // knob is sticky beyond the test.
    pool::set_threads(0);
}
