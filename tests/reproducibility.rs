//! Reproducibility guarantees: every experiment is a pure function of
//! `(scale, seed)`, and trained models survive serialization.

use maleva_attack::{EvasionAttack, Jsma};
use maleva_core::{greybox, whitebox, ExperimentContext, ExperimentScale};
use maleva_nn::Network;

#[test]
fn contexts_are_bit_identical_for_equal_seeds() {
    let a = ExperimentContext::build(ExperimentScale::tiny(), 5).expect("a");
    let b = ExperimentContext::build(ExperimentScale::tiny(), 5).expect("b");
    assert_eq!(a.x_train, b.x_train);
    assert_eq!(a.y_train, b.y_train);
    assert_eq!(a.x_test, b.x_test);
    assert_eq!(
        a.target().logits(&a.x_test).expect("logits"),
        b.target().logits(&b.x_test).expect("logits"),
    );
}

#[test]
fn different_seeds_produce_different_worlds_and_models() {
    let a = ExperimentContext::build(ExperimentScale::tiny(), 5).expect("a");
    let b = ExperimentContext::build(ExperimentScale::tiny(), 6).expect("b");
    assert_ne!(a.x_train, b.x_train);
    // Different weights too: same input, different logits.
    let x = a.attack_batch();
    assert_ne!(
        a.target().logits(&x).expect("logits"),
        b.target().logits(&x).expect("logits"),
    );
}

#[test]
fn attack_outcomes_are_deterministic() {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 7).expect("ctx");
    let batch = ctx.attack_batch();
    let jsma = Jsma::new(0.3, 0.05);
    let (adv1, o1) = jsma.craft_batch(ctx.target(), &batch).expect("craft");
    let (adv2, o2) = jsma.craft_batch(ctx.target(), &batch).expect("craft");
    assert_eq!(adv1, adv2);
    assert_eq!(o1, o2);
}

#[test]
fn curves_are_deterministic() {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 8).expect("ctx");
    let c1 = whitebox::gamma_curve(&ctx, 20).expect("c1");
    let c2 = whitebox::gamma_curve(&ctx, 20).expect("c2");
    assert_eq!(c1, c2);
}

#[test]
fn substitute_training_is_deterministic() {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 9).expect("ctx");
    let s1 = greybox::train_substitute(&ctx, 42).expect("s1");
    let s2 = greybox::train_substitute(&ctx, 42).expect("s2");
    let x = ctx.attack_batch();
    assert_eq!(s1.logits(&x).expect("l1"), s2.logits(&x).expect("l2"));
    // And a different attacker seed gives a different substitute.
    let s3 = greybox::train_substitute(&ctx, 43).expect("s3");
    assert_ne!(s1.logits(&x).expect("l1"), s3.logits(&x).expect("l3"));
}

#[test]
fn trained_target_round_trips_through_json() {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 10).expect("ctx");
    let json = ctx.target().to_json().expect("serialize");
    let restored = Network::from_json(&json).expect("deserialize");
    let x = ctx.attack_batch();
    assert_eq!(
        ctx.target().logits(&x).expect("orig"),
        restored.logits(&x).expect("restored"),
    );
    // The restored model is attackable identically.
    let jsma = Jsma::new(0.3, 0.04);
    let (a1, _) = jsma.craft_batch(ctx.target(), &x).expect("craft");
    let (a2, _) = jsma.craft_batch(&restored, &x).expect("craft");
    assert_eq!(a1, a2);
}

#[test]
fn log_rendering_is_stable_across_calls() {
    let ctx = ExperimentContext::build(ExperimentScale::tiny(), 11).expect("ctx");
    let prog = &ctx.dataset.test()[3];
    let v = ctx.world.vocab();
    assert_eq!(prog.render_log(v), prog.render_log(v));
    // Scanning is idempotent (no hidden state in the pipeline).
    let c1 = ctx.detector.scan(prog).expect("scan");
    let c2 = ctx.detector.scan(prog).expect("scan");
    assert_eq!(c1, c2);
}
