//! Offline vendored `criterion` shim.
//!
//! Provides enough of criterion's API that maleva's bench suites compile
//! and run without crates.io access. Instead of statistical sampling it
//! runs each benchmark for a few timed iterations and prints a rough
//! mean — useful as a smoke test and order-of-magnitude signal, not a
//! rigorous measurement.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Throughput annotation (accepted and ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then the timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep shim runs quick: benches here are a smoke test.
        Criterion { iters: 3 }
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        total: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.total.as_secs_f64() / iters.max(1) as f64;
    println!("bench {name:<50} ~{:>12.3} µs/iter", mean * 1e6);
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted; the shim keeps its own tiny
    /// iteration budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted and ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets throughput annotation (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: fmt::Display, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
