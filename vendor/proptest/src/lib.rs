//! Offline vendored `proptest` stand-in.
//!
//! Supports the subset the maleva test suites use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/
//! `prop_assume!`, range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()`, `Just`, and the `prop_map` /
//! `prop_filter` / `prop_flat_map` combinators.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (reproducible across runs), there
//! is **no shrinking** (failures report the exact generated inputs
//! instead), and the default case count is 64 per test.

use std::fmt;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Number of cases each `proptest!` test runs.
pub const DEFAULT_CASES: usize = 64;

/// Maximum consecutive `prop_assume!` rejections before a test aborts.
pub const MAX_REJECTS: usize = 4096;

/// Runner configuration. Accepted for source compatibility; the vendored
/// runner keeps its own fixed case budget.
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    /// Requested number of cases (informational).
    pub cases: u32,
}

impl ProptestConfig {
    /// Requests `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Result type the body of a generated case returns.
pub type TestCaseResult = Result<(), TestCaseError>;

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred` (retrying, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {MAX_REJECTS} candidates",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (`Rc`-shared, clonable).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Regex string strategies
// ---------------------------------------------------------------------------

/// One parsed element of a string pattern: a set of candidate chars plus a
/// repetition range.
struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the regex subset upstream proptest accepts for `&str`
/// strategies that maleva uses: literals, `[...]` classes with ranges,
/// and `{m}` / `{m,n}` / `*` / `+` / `?` quantifiers.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
                let body = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                        for cp in lo..=hi {
                            if let Some(c) = char::from_u32(cp) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier min"),
                        hi.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(!set.is_empty(), "empty char class in pattern `{pattern}`");
        atoms.push(PatternAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

/// `&str` patterns are string strategies, like upstream proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let count = rng.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

/// The standard strategy for a type: full range for integers, unit
/// interval for floats, fair coin for `bool`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding values from the rand `Standard` distribution.
pub struct StandardStrategy<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T> Strategy for StandardStrategy<T>
where
    rand::distributions::Standard: rand::distributions::Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                StandardStrategy { marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// The `prop::` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// A size specifier: a fixed length or a range of lengths.
        pub trait SizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec`s with the given element strategy and size.
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        /// Creates a `Vec` strategy.
        pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed set of values.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Chooses uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Panics at generation time if `options` is empty.
        pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
            Select {
                options: options.into(),
            }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.options.is_empty(), "select requires options");
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }
}

/// Derives a stable 64-bit seed from a test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a; stability across runs is all that matters.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `body` for [`DEFAULT_CASES`] generated cases. Used by the
/// [`proptest!`] macro; not public API.
pub fn run_cases<F: FnMut(&mut TestRng) -> TestCaseResult>(test_name: &str, mut body: F) {
    let mut rng = TestRng::seed_from_u64(seed_for(test_name));
    let mut executed = 0usize;
    let mut rejected = 0usize;
    while executed < DEFAULT_CASES {
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > MAX_REJECTS {
                    panic!(
                        "{test_name}: prop_assume! rejected {rejected} cases \
                         (only {executed} executed)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed after {executed} passing cases: {msg}");
            }
        }
    }
}

/// Defines property tests. Mirrors upstream's macro syntax:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Optional `#![proptest_config(...)]` header: accepted, the expression
    // is evaluated once (so typos still fail to compile) but the vendored
    // runner keeps its own case budget.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @__config ($config) $($rest)* }
    };
    (@__config ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let _ = &$config;
            $crate::run_cases(concat!(module_path!(), "::", stringify!($name)), |__rng| {
                let ($($pat,)*) = ($($crate::Strategy::generate(&($strat), __rng),)*);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            // Strategies are built once; generation uses a per-test RNG.
            $crate::run_cases(concat!(module_path!(), "::", stringify!($name)), |__rng| {
                let ($($pat,)*) = ($($crate::Strategy::generate(&($strat), __rng),)*);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} ({}:{})", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l == __r,
            "{} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l != __r,
            "{} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything tests usually import.
pub mod prelude {
    /// Upstream re-exports `prop_oneof!` etc. here; the vendored subset
    /// exposes the strategy alias type for signatures.
    pub use crate::BoxedStrategy;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_length(v in prop::collection::vec(0u8..=255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn map_and_assume((a, b) in (0u32..100, 0u32..100).prop_map(|(a, b)| (a.min(b), a.max(b)))) {
            prop_assume!(a != b);
            prop_assert!(a < b);
        }

        #[test]
        fn select_picks_member(x in prop::sample::select(vec![2usize, 3, 5, 7])) {
            prop_assert!([2usize, 3, 5, 7].contains(&x));
        }

        #[test]
        fn any_bool_generates(x in any::<bool>()) {
            prop_assert!(x || !x);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }
}
