//! Distributions: the standard distribution, the [`Distribution`] trait,
//! and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "standard" distribution: `[0, 1)` for floats, the full range for
/// integers, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use crate::RngCore;

    /// A type that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Draws a value in `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`.
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

        /// Draws a value in `[low, high]`.
        ///
        /// # Panics
        ///
        /// Panics if `low > high`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! impl_sample_uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let span = (high - low) as u64;
                    low + (bounded_u64(span, rng) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let span = (high - low) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low + (bounded_u64(span + 1, rng) as $t)
                }
            }
        )*};
    }
    impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let span = (high as i64).wrapping_sub(low as i64) as u64;
                    low.wrapping_add(bounded_u64(span, rng) as $t)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let span = (high as i64).wrapping_sub(low as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(bounded_u64(span + 1, rng) as $t)
                }
            }
        )*};
    }
    impl_sample_uniform_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    let v = low + (high - low) * unit;
                    // Floating rounding can land exactly on `high`; clamp
                    // back inside the half-open interval.
                    if v >= high { <$t>::max(low, high - (high - low) * <$t>::EPSILON) } else { v }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    low + (high - low) * unit
                }
            }
        )*};
    }
    impl_sample_uniform_float!(f32, f64);

    /// Uniform value in `[0, span)` by widening multiply (Lemire).
    fn bounded_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A range that can be sampled: `a..b` or `a..=b`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }
}
