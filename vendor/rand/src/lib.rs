//! Offline vendored stand-in for the `rand` crate.
//!
//! This container has no crates.io access, so the workspace vendors the
//! *subset* of `rand`'s API that maleva uses: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`, `sample`),
//! and the [`distributions`] module with [`distributions::Standard`] and
//! [`distributions::Distribution`].
//!
//! The value streams are deterministic and stable within this workspace but
//! are **not** bit-compatible with upstream `rand`; everything in maleva
//! that depends on exact streams (reproducibility tests, checkpoints)
//! derives them from this implementation, so self-consistency is what
//! matters.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::Distribution;

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed
    /// with SplitMix64 (the same scheme upstream `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence; used for seed expansion.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
        Self: Sized,
    {
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        let x: f64 = distributions::Standard.sample(self);
        x < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Fills a slice with values from the standard distribution.
    fn fill<T>(&mut self, dest: &mut [T])
    where
        distributions::Standard: Distribution<T>,
        Self: Sized,
    {
        for slot in dest.iter_mut() {
            *slot = distributions::Standard.sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let i: usize = rng.gen_range(0..17);
            assert!(i < 17);
            let j: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&j));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Lcg(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
