//! Named generators, mirroring `rand::rngs`.

use crate::{splitmix64, RngCore, SeedableRng};

/// A small, fast, deterministic generator (xoshiro256++ under the hood;
/// upstream `StdRng` makes no stream-stability promise either, so code
/// needing stable streams should use `rand_chacha` as maleva does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point for xoshiro; nudge it.
        if s.iter().all(|&w| w == 0) {
            let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nonconstant() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
