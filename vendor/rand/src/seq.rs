//! Sequence helpers, mirroring the bits of `rand::seq` maleva uses.

use crate::{Rng, RngCore};

/// Extension methods on slices: random choice and in-place shuffling.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3, 4];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut w = vec![0, 1, 2, 3, 4, 5, 6, 7];
        w.shuffle(&mut rng);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
