//! Offline vendored `rand_chacha`: a genuine ChaCha8 keystream generator.
//!
//! Implements the ChaCha quarter-round construction (Bernstein 2008) with
//! 8 double-rounds over a 16-word state, exposing it through the vendored
//! `rand` traits. Streams are deterministic for a given seed, and the full
//! generator state serializes via serde — maleva's trainer checkpoints rely
//! on that to resume mid-run with bit-identical randomness.
//!
//! Word order out of each block matches the natural state order; `next_u64`
//! combines two consecutive `u32` words little-endian first, the same
//! convention `rand_core` uses for 32-bit block generators.

use rand::{RngCore, SeedableRng};
use serde::de::Error as _;
use serde::{Content, Deserialize, Deserializer, Serialize};

const BLOCK_WORDS: usize = 16;

/// A ChaCha generator with 8 double-rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// Index of the *next* 64-byte block to generate.
    counter: u64,
    /// Words of the current block already handed out (16 = block spent).
    idx: usize,
    buf: [u32; BLOCK_WORDS],
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha8_block(key: &[u32; 8], counter: u64) -> [u32; BLOCK_WORDS] {
    // "expand 32-byte k" constants.
    let mut state: [u32; BLOCK_WORDS] = [
        0x6170_7865,
        0x3320_646E,
        0x7962_2D32,
        0x6B20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..4 {
        // 4 double-rounds = 8 rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buf = chacha8_block(&self.key, self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            idx: BLOCK_WORDS,
            buf: [0; BLOCK_WORDS],
        }
    }
}

// State serialization: `{key, counter, idx}` fully determines the stream —
// the buffered block is a pure function of (key, counter) and is rebuilt on
// deserialize, so a resumed generator continues bit-identically.
impl Serialize for ChaCha8Rng {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "key".to_string(),
                Content::Seq(self.key.iter().map(|&w| Content::U64(w as u64)).collect()),
            ),
            ("counter".to_string(), Content::U64(self.counter)),
            ("idx".to_string(), Content::U64(self.idx as u64)),
        ])
    }
}

impl<'de> Deserialize<'de> for ChaCha8Rng {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.content()?;
        let mut map = match content {
            Content::Map(m) => m,
            _ => return Err(D::Error::custom("ChaCha8Rng: expected map")),
        };
        let key_words: Vec<u64> = serde::__private::take_field(&mut map, "key")?;
        let counter: u64 = serde::__private::take_field(&mut map, "counter")?;
        let idx: u64 = serde::__private::take_field(&mut map, "idx")?;
        if key_words.len() != 8 {
            return Err(D::Error::custom("ChaCha8Rng: key must have 8 words"));
        }
        if idx > BLOCK_WORDS as u64 {
            return Err(D::Error::custom("ChaCha8Rng: idx out of range"));
        }
        let mut key = [0u32; 8];
        for (slot, &w) in key.iter_mut().zip(key_words.iter()) {
            *slot = w as u32;
        }
        let mut rng = ChaCha8Rng {
            key,
            counter,
            idx: idx as usize,
            buf: [0; BLOCK_WORDS],
        };
        if rng.idx < BLOCK_WORDS {
            // Rebuild the partially consumed block (it was generated from
            // counter - 1, after which counter was advanced).
            rng.buf = chacha8_block(&rng.key, counter.wrapping_sub(1));
        }
        Ok(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(12);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn serde_round_trip_resumes_stream_mid_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..21 {
            // not a multiple of 16: lands mid-block
            rng.next_u32();
        }
        let json = serde_json::to_string(&rng).expect("serialize");
        let mut restored: ChaCha8Rng = serde_json::from_str(&json).expect("deserialize");
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn block_function_diffuses() {
        let key = [0u32; 8];
        let b0 = chacha8_block(&key, 0);
        let b1 = chacha8_block(&key, 1);
        assert_ne!(b0, b1);
        assert!(b0.iter().any(|&w| w != 0));
    }
}
