//! Offline vendored subset of `rand_distr`.
//!
//! Provides the distributions maleva's API-call simulator draws from:
//! [`Normal`], [`LogNormal`] (log-normal API-count intensities), and
//! [`Poisson`] (per-API call counts). Sampling algorithms are textbook
//! (Box–Muller, inversion/Knuth) rather than upstream's ziggurat tables,
//! so streams differ from upstream but are deterministic per seed.

use std::fmt;

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error building a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error {
    what: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for Error {}

/// Uniform draw in `[0, 1)` that works through unsized `R`.
fn u01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws a standard normal via Box–Muller (two uniforms per value; no
/// cached spare, so sampling stays stateless and checkpoint-friendly).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1 = u01(rng);
        if u1 > 0.0 {
            let u2 = u01(rng);
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Errors if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !(std_dev >= 0.0) || !std_dev.is_finite() || !mean.is_finite() {
            return Err(Error {
                what: "Normal requires finite mean and std_dev >= 0",
            });
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's
    /// parameters.
    ///
    /// # Errors
    ///
    /// Errors if `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma).map_err(|_| Error {
                what: "LogNormal requires finite mu and sigma >= 0",
            })?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// The Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Errors unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(Error {
                what: "Poisson requires finite lambda > 0",
            });
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let threshold = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= u01(rng);
                if p <= threshold {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction; adequate for
            // the simulator's burst intensities and avoids O(lambda) loops.
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            x.round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn lognormal_is_positive_and_centered() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 4000;
        let mut sum_log = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x > 0.0);
            sum_log += x.ln();
        }
        assert!((sum_log / n as f64).abs() < 0.05, "log-mean should be ~0");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        for lambda in [0.5, 4.0, 60.0] {
            let d = Poisson::new(lambda).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let n = 4000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
    }
}
