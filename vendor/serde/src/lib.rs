//! Offline vendored `serde` stand-in.
//!
//! The container building this workspace has no crates.io access, so the
//! workspace vendors the subset of serde's surface maleva uses. Instead of
//! upstream's visitor-based zero-copy data model, everything funnels
//! through a concrete [`Content`] tree (the same trick serde itself uses
//! internally for untagged enums):
//!
//! * [`Serialize`] renders a value *to* a [`Content`] tree;
//! * [`Deserializer`] is anything that can produce a [`Content`] tree;
//! * [`Deserialize`] builds a value *from* a [`Deserializer`].
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the vendored
//! `serde_derive` proc macro and supports plain structs (with
//! `#[serde(skip)]` / `#[serde(default)]` fields) and enums with unit,
//! tuple, and struct variants in serde's externally-tagged layout.
//! Manual impls written against real serde's `Deserializer<'de>` +
//! `D::Error` idiom keep working because those names and bounds exist here
//! with compatible shapes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

use crate::de::Error as _;

/// A self-describing value tree: the data model every (de)serializer in
/// this vendored stack speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / a missing optional.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Content)>),
}

/// Deserialization support types, mirroring `serde::de`.
pub mod de {
    use std::fmt::Display;

    /// The error trait every [`crate::Deserializer`] error must implement.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Serialization support types, mirroring `serde::ser`.
pub mod ser {
    use std::fmt::Display;

    /// The error trait serializer errors implement.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A value that can render itself into a [`Content`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// A source of one [`Content`] tree (what upstream serde calls a
/// `Deserializer`). The lifetime mirrors upstream's signature so manual
/// impls port over unchanged.
pub trait Deserializer<'de> {
    /// Error type produced when the underlying input is malformed.
    type Error: de::Error;

    /// Consumes the deserializer, yielding its [`Content`] tree.
    fn content(self) -> Result<Content, Self::Error>;
}

/// A value that can be rebuilt from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from the deserializer.
    ///
    /// # Errors
    ///
    /// Returns the deserializer's error if the input does not describe a
    /// valid `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Owned-deserialization alias used by generic bounds like
/// `T: DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A [`Deserializer`] over an in-memory [`Content`] tree with a caller-
/// chosen error type. Derive-generated code uses this to recurse into
/// fields and sequence elements.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: std::marker::PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: std::marker::PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Support helpers for derive-generated and vendored-crate code. Not part
/// of the public API contract (mirrors `serde::__private`).
pub mod __private {
    use super::*;

    /// Deserializes a `T` out of a content tree with error type `E`.
    ///
    /// # Errors
    ///
    /// Propagates `T`'s deserialization error.
    pub fn from_content<'de, T: Deserialize<'de>, E: de::Error>(content: Content) -> Result<T, E> {
        T::deserialize(ContentDeserializer::<E>::new(content))
    }

    /// Removes field `name` from a map's entries and deserializes it.
    ///
    /// # Errors
    ///
    /// Errors if the field is missing or malformed.
    pub fn take_field<'de, T: Deserialize<'de>, E: de::Error>(
        entries: &mut Vec<(String, Content)>,
        name: &str,
    ) -> Result<T, E> {
        match entries.iter().position(|(k, _)| k == name) {
            Some(i) => from_content(entries.remove(i).1),
            None => Err(E::custom(format!("missing field `{name}`"))),
        }
    }

    /// Like [`take_field`] but falls back to `Default` when absent
    /// (`#[serde(default)]` / `Option` fields).
    ///
    /// # Errors
    ///
    /// Errors only if the field is present but malformed.
    pub fn take_field_or_default<'de, T: Deserialize<'de> + Default, E: de::Error>(
        entries: &mut Vec<(String, Content)>,
        name: &str,
    ) -> Result<T, E> {
        match entries.iter().position(|(k, _)| k == name) {
            Some(i) => from_content(entries.remove(i).1),
            None => Ok(T::default()),
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                let ($($name,)+) = self;
                Content::Seq(vec![$($name.to_content()),+])
            }
        }
    )*};
}
impl_ser_tuple!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// A map key: anything that renders to / parses from a map-key string.
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back; `None` on malformed input.
    fn from_key(key: &str) -> Option<Self>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Option<Self> {
        Some(key.to_string())
    }
}

macro_rules! impl_map_key_num {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Option<Self> { key.parse().ok() }
        }
    )*};
}
impl_map_key_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort entries by rendered key so serialized
        // checkpoints are byte-stable across runs.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn type_error<E: de::Error>(expected: &str, got: &Content) -> E {
    let kind = match got {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::U64(_) | Content::I64(_) => "integer",
        Content::F64(_) => "float",
        Content::Str(_) => "string",
        Content::Seq(_) => "sequence",
        Content::Map(_) => "map",
    };
    E::custom(format!("expected {expected}, found {kind}"))
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.content()? {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!("{v} out of range"))),
                    other => Err(type_error(stringify!($t), &other)),
                }
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v: i64 = match d.content()? {
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| D::Error::custom(format!("{v} out of range")))?,
                    Content::I64(v) => v,
                    other => return Err(type_error(stringify!($t), &other)),
                };
                <$t>::try_from(v).map_err(|_| de::Error::custom(format!("{v} out of range")))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(type_error("f64", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.content()? {
            Content::Bool(b) => Ok(b),
            other => Err(type_error("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.content()? {
            Content::Str(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected single-character string")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.content()? {
            Content::Null => Ok(None),
            other => __private::from_content(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|item| __private::from_content(item))
                .collect(),
            other => Err(type_error("sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(d)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format!("expected array of {N}, found {len}")))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal, $($name:ident : $idx:tt),+)),*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            __private::from_content::<$name, __D::Error>(
                                it.next().expect("length checked"),
                            )?
                        },)+))
                    }
                    Content::Seq(items) => Err(__D::Error::custom(format!(
                        "expected tuple of {}, found sequence of {}", $len, items.len()
                    ))),
                    other => Err(type_error("tuple sequence", &other)),
                }
            }
        }
    )*};
}
impl_de_tuple!(
    (1, A: 0),
    (2, A: 0, B: 1),
    (3, A: 0, B: 1, C: 2),
    (4, A: 0, B: 1, C: 2, D: 3),
    (5, A: 0, B: 1, C: 2, D: 3, E: 4)
);

impl<'de, K: MapKey + Eq + Hash, V: Deserialize<'de>, S> Deserialize<'de> for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = K::from_key(&k)
                        .ok_or_else(|| D::Error::custom(format!("bad map key `{k}`")))?;
                    Ok((key, __private::from_content(v)?))
                })
                .collect(),
            other => Err(type_error("map", &other)),
        }
    }
}

impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = K::from_key(&k)
                        .ok_or_else(|| D::Error::custom(format!("bad map key `{k}`")))?;
                    Ok((key, __private::from_content(v)?))
                })
                .collect(),
            other => Err(type_error("map", &other)),
        }
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Content::Null => write!(f, "null"),
            Content::Bool(b) => write!(f, "{b}"),
            Content::U64(v) => write!(f, "{v}"),
            Content::I64(v) => write!(f, "{v}"),
            Content::F64(v) => write!(f, "{v}"),
            Content::Str(s) => write!(f, "{s:?}"),
            Content::Seq(items) => write!(f, "[{} items]", items.len()),
            Content::Map(entries) => write!(f, "{{{} fields}}", entries.len()),
        }
    }
}
