//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! serde stand-in.
//!
//! No syn/quote in this container, so parsing walks the raw
//! [`proc_macro::TokenStream`] directly and code generation renders Rust
//! source as strings. Supported shapes — the ones the maleva workspace
//! actually derives on:
//!
//! * structs with named fields (incl. `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(rename = "...")]`);
//! * tuple structs (newtype structs serialize transparently, like serde);
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics and unrecognized `#[serde(...)]` options produce a
//! `compile_error!` instead of silently wrong data.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let source = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    source.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive codegen: {e}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Field {
    ident: String,
    /// Name used in the serialized map (after `rename`).
    key: String,
    skip: bool,
    default: bool,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Lifetime-only generics like `<'a>`, rendered verbatim; type
    /// generics are rejected at parse time.
    lifetimes: Vec<String>,
    body: Body,
}

impl Item {
    /// `Name<'a, 'b>` or just `Name`.
    fn self_ty(&self) -> String {
        if self.lifetimes.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.lifetimes.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct SerdeOpts {
    skip: bool,
    default: bool,
    rename: Option<String>,
}

/// Consumes leading attributes from `tokens` (an iterator position `i`),
/// returning accumulated serde options.
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> Result<SerdeOpts, String> {
    let mut opts = SerdeOpts {
        skip: false,
        default: false,
        rename: None,
    };
    while *i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        let group = match &tokens[*i + 1] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => g,
            _ => break,
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if let Some(TokenTree::Ident(name)) = inner.first() {
            if name.to_string() == "serde" {
                let args = match inner.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        g.stream().into_iter().collect::<Vec<_>>()
                    }
                    _ => return Err("malformed #[serde(...)] attribute".to_string()),
                };
                parse_serde_args(&args, &mut opts)?;
            }
        }
        *i += 2;
    }
    Ok(opts)
}

fn parse_serde_args(args: &[TokenTree], opts: &mut SerdeOpts) -> Result<(), String> {
    let mut j = 0;
    while j < args.len() {
        let word = match &args[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => return Err("unsupported #[serde] syntax".to_string()),
        };
        match word.as_str() {
            "skip" => {
                opts.skip = true;
                j += 1;
            }
            "default" => {
                opts.default = true;
                j += 1;
            }
            "rename" => {
                let eq = matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                let lit = match args.get(j + 2) {
                    Some(TokenTree::Literal(l)) => l.to_string(),
                    _ => String::new(),
                };
                if !eq || !lit.starts_with('"') {
                    return Err("expected #[serde(rename = \"...\")]".to_string());
                }
                opts.rename = Some(lit.trim_matches('"').to_string());
                j += 3;
            }
            other => {
                return Err(format!(
                    "vendored serde_derive does not support #[serde({other})]"
                ))
            }
        }
        if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
    Ok(())
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if *i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    parse_attrs(&tokens, &mut i)?;
    skip_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected struct or enum".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".to_string()),
    };
    i += 1;

    let mut lifetimes = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        // Accept lifetime parameters only: `'a`, `'a, 'b`, ...
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    i += 1;
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    let lt = match tokens.get(i + 1) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        _ => return Err("malformed lifetime parameter".to_string()),
                    };
                    lifetimes.push(format!("'{lt}"));
                    i += 2;
                    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        i += 1;
                    }
                }
                _ => {
                    return Err(format!(
                        "vendored serde_derive does not support type-generic `{name}`"
                    ))
                }
            }
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                lifetimes,
                body: Body::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>())
                    .into_iter()
                    .filter(|part| !part.is_empty())
                    .count();
                Ok(Item {
                    name,
                    lifetimes,
                    body: Body::TupleStruct(arity),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                lifetimes,
                body: Body::UnitStruct,
            }),
            _ => Err("unsupported struct body".to_string()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                lifetimes,
                body: Body::Enum(parse_variants(g.stream())?),
            }),
            _ => Err("expected enum body".to_string()),
        },
        other => Err(format!("cannot derive serde traits for `{other}`")),
    }
}

/// Splits a token list on commas not nested inside `<...>` pairs.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().expect("non-empty").push(tok.clone());
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    for part in split_top_level_commas(&tokens) {
        if part.is_empty() {
            continue;
        }
        let mut i = 0;
        let opts = parse_attrs(&part, &mut i)?;
        skip_vis(&part, &mut i);
        let ident = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("expected field name".to_string()),
        };
        let key = opts.rename.clone().unwrap_or_else(|| ident.clone());
        fields.push(Field {
            ident,
            key,
            skip: opts.skip,
            default: opts.default,
        });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    for part in split_top_level_commas(&tokens) {
        if part.is_empty() {
            continue;
        }
        let mut i = 0;
        parse_attrs(&part, &mut i)?;
        let ident = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("expected variant name".to_string()),
        };
        i += 1;
        match part.get(i) {
            None => variants.push(Variant::Unit(ident)),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: serialized by name, so ignore it.
                variants.push(Variant::Unit(ident));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>())
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .count();
                variants.push(Variant::Tuple(ident, arity));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(ident, parse_named_fields(g.stream())?));
            }
            _ => return Err(format!("unsupported body for variant `{ident}`")),
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__entries.push(({key:?}.to_string(), \
                     ::serde::Serialize::to_content(&self.{ident})));\n",
                    key = f.key,
                    ident = f.ident,
                ));
            }
            format!(
                "let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Content)> \
                 = ::std::vec::Vec::new();\n{pushes}::serde::Content::Map(__entries)"
            )
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Body::TupleStruct(arity) => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Seq(vec![{items}])")
        }
        Body::UnitStruct => "::serde::Content::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str({vn:?}.to_string()),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let binders = (0..*arity)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_content(__f0)".to_string()
                        } else {
                            let items = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Content::Seq(vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binders}) => ::serde::Content::Map(vec![\
                             ({vn:?}.to_string(), {payload})]),\n"
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binders = fields
                            .iter()
                            .map(|f| f.ident.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({key:?}.to_string(), ::serde::Serialize::to_content({id}))",
                                    key = f.key,
                                    id = f.ident
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => ::serde::Content::Map(vec![\
                             ({vn:?}.to_string(), ::serde::Content::Map(vec![{items}]))]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let generics = if item.lifetimes.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.lifetimes.join(", "))
    };
    let self_ty = item.self_ty();
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {self_ty} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_named_struct_ctor(path: &str, fields: &[Field], map_var: &str) -> String {
    let inits = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::core::default::Default::default(),", f.ident)
            } else if f.default {
                format!(
                    "{id}: ::serde::__private::take_field_or_default::<_, __D::Error>\
                     (&mut {map_var}, {key:?})?,",
                    id = f.ident,
                    key = f.key
                )
            } else {
                format!(
                    "{id}: ::serde::__private::take_field::<_, __D::Error>\
                     (&mut {map_var}, {key:?})?,",
                    id = f.ident,
                    key = f.key
                )
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    format!("{path} {{\n{inits}\n}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let ctor = gen_named_struct_ctor(name, fields, "__map");
            format!(
                "let mut __map = match __content {{\n\
                     ::serde::Content::Map(__m) => __m,\n\
                     _ => return Err(<__D::Error as ::serde::de::Error>::custom(\
                          concat!(\"expected map for struct \", stringify!({name})))),\n\
                 }};\n\
                 Ok({ctor})"
            )
        }
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::__private::from_content::<_, __D::Error>(__content)?))")
        }
        Body::TupleStruct(arity) => {
            let fields = (0..*arity)
                .map(|_| {
                    "::serde::__private::from_content::<_, __D::Error>(\
                     __items.next().expect(\"length checked\"))?"
                        .to_string()
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match __content {{\n\
                     ::serde::Content::Seq(__seq) if __seq.len() == {arity} => {{\n\
                         let mut __items = __seq.into_iter();\n\
                         Ok({name}({fields}))\n\
                     }}\n\
                     _ => Err(<__D::Error as ::serde::de::Error>::custom(\
                          concat!(\"expected sequence for tuple struct \", stringify!({name})))),\n\
                 }}"
            )
        }
        Body::UnitStruct => format!("let _ = __content; Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"))
                    }
                    Variant::Tuple(vn, 1) => data_arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(\
                         ::serde::__private::from_content::<_, __D::Error>(__payload)?)),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let fields = (0..*arity)
                            .map(|_| {
                                "::serde::__private::from_content::<_, __D::Error>(\
                                 __items.next().expect(\"length checked\"))?"
                                    .to_string()
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        data_arms.push_str(&format!(
                            "{vn:?} => match __payload {{\n\
                                 ::serde::Content::Seq(__seq) if __seq.len() == {arity} => {{\n\
                                     let mut __items = __seq.into_iter();\n\
                                     Ok({name}::{vn}({fields}))\n\
                                 }}\n\
                                 _ => Err(<__D::Error as ::serde::de::Error>::custom(\
                                      \"wrong payload arity for enum variant\")),\n\
                             }},\n"
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let ctor =
                            gen_named_struct_ctor(&format!("{name}::{vn}"), fields, "__vmap");
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let mut __vmap = match __payload {{\n\
                                     ::serde::Content::Map(__m) => __m,\n\
                                     _ => return Err(<__D::Error as ::serde::de::Error>::custom(\
                                          \"expected map payload for struct variant\")),\n\
                                 }};\n\
                                 Ok({ctor})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __content {{\n\
                     ::serde::Content::Str(ref __s) => {{\n\
                         match __s.as_str() {{\n{unit_arms}\
                             __other => Err(<__D::Error as ::serde::de::Error>::custom(\
                                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = __m.into_iter().next().expect(\"len 1\");\n\
                         match __tag.as_str() {{\n{data_arms}\
                             __other => Err(<__D::Error as ::serde::de::Error>::custom(\
                                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(<__D::Error as ::serde::de::Error>::custom(\
                          concat!(\"expected variant for enum \", stringify!({name})))),\n\
                 }}"
            )
        }
    };
    let extra_lts = item
        .lifetimes
        .iter()
        .map(|lt| format!(", {lt}"))
        .collect::<String>();
    let self_ty = item.self_ty();
    format!(
        "#[automatically_derived]\n\
         impl<'de{extra_lts}> ::serde::Deserialize<'de> for {self_ty} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         let __content = ::serde::Deserializer::content(__d)?;\n\
         {body}\n}}\n}}\n"
    )
}
