//! Offline vendored `serde_json` stand-in.
//!
//! Renders and parses JSON through the vendored serde [`Content`] tree.
//! Floats print with Rust's shortest-round-trip `Display`, so
//! `to_string` → `from_str` reproduces every finite `f64` bit-exactly —
//! the property maleva's model checkpoints and reproducibility tests rely
//! on (the upstream crate's `float_roundtrip` feature).
//!
//! Non-finite floats serialize as `null`, like upstream serde_json.

use std::fmt;

use serde::{Content, ContentDeserializer, Deserialize, Serialize};

/// Error produced when JSON text is malformed or does not match the
/// target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content_pretty(&value.to_content(), &mut out, 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Errors if the text is not valid JSON or does not describe a `T`.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error {
            msg: format!("trailing characters at byte {}", parser.pos),
        });
    }
    T::deserialize(ContentDeserializer::<Error>::new(content))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep a trailing ".0" so integral floats parse back as floats.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_content_pretty(c: &Content, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth + 1);
    let close_pad = "  ".repeat(depth);
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_content_pretty(item, out, depth + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_content_pretty(v, out, depth + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_content(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(&b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: must be followed by \uXXXX low.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos past the 4 digits; undo
                            // the unconditional +1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&"a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        let v: bool = from_str("true").unwrap();
        assert!(v);
        let s: String = from_str(r#""hié\n""#).unwrap();
        assert_eq!(s, "hié\n");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.5,
            3.0,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            std::f64::consts::PI,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x} via {json}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn vec_and_map_round_trip() {
        let v = vec![1.25f64, -2.5, 1e-3];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert("alpha".to_string(), 1usize);
        m.insert("beta".to_string(), 2usize);
        let json = to_string(&m).unwrap();
        let back: HashMap<String, usize> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_round_trip() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        let x: Option<u32> = from_str("null").unwrap();
        assert_eq!(x, None);
        let y: Option<u32> = from_str("3").unwrap();
        assert_eq!(y, Some(3));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u8, 2], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<u8>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
